// Package spec implements the tiny argument grammar shared by the
// protocol and mobility registries: a spec is "name" or "name:args",
// where args is a comma-separated list of key=value pairs and bare
// flags ("pq:p=0.8,q=0.5", "pq:p=1,q=1,anti"). Parsing never panics;
// malformed input is reported as an error the registries wrap in their
// ErrSpec sentinels.
package spec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Split separates a spec string into its registry name and argument
// part. The argument part is empty when no colon is present; only the
// first colon splits, so values (e.g. trace file paths) may contain
// colons.
func Split(s string) (name, args string) {
	name, args, _ = strings.Cut(strings.TrimSpace(s), ":")
	return strings.TrimSpace(name), strings.TrimSpace(args)
}

// Params holds the parsed key=value arguments of one spec. Typed
// accessors record which keys were consumed so Unknown can reject
// misspelled parameters.
type Params struct {
	vals map[string]string
	used map[string]bool
}

// Parse parses a comma-separated "k=v,k2=v2,flag" argument list. A bare
// flag is stored with an empty value and read back via Flag. An empty
// args string yields an empty parameter set.
func Parse(args string) (*Params, error) {
	p := &Params{vals: map[string]string{}, used: map[string]bool{}}
	if strings.TrimSpace(args) == "" {
		return p, nil
	}
	for _, field := range strings.Split(args, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			return nil, fmt.Errorf("empty argument in %q", args)
		}
		key, val, _ := strings.Cut(field, "=")
		key = strings.TrimSpace(key)
		if key == "" {
			return nil, fmt.Errorf("argument %q has no key", field)
		}
		if _, dup := p.vals[key]; dup {
			return nil, fmt.Errorf("duplicate argument %q", key)
		}
		p.vals[key] = strings.TrimSpace(val)
	}
	return p, nil
}

// Has reports whether key was supplied (as a pair or a flag).
func (p *Params) Has(key string) bool {
	_, ok := p.vals[key]
	return ok
}

// Flag consumes key and reports whether it was supplied as a bare flag
// or with a true-ish value.
func (p *Params) Flag(key string) (bool, error) {
	v, ok := p.vals[key]
	if !ok {
		return false, nil
	}
	p.used[key] = true
	switch v {
	case "", "true", "1", "yes", "on":
		return true, nil
	case "false", "0", "no", "off":
		return false, nil
	}
	return false, fmt.Errorf("flag %q has non-boolean value %q", key, v)
}

// Float consumes key as a finite float64, returning def when absent.
func (p *Params) Float(key string, def float64) (float64, error) {
	v, ok := p.vals[key]
	if !ok {
		return def, nil
	}
	p.used[key] = true
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q is not a number", key, v)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("%s=%q is not finite", key, v)
	}
	return f, nil
}

// Int consumes key as an int, returning def when absent.
func (p *Params) Int(key string, def int) (int, error) {
	v, ok := p.vals[key]
	if !ok {
		return def, nil
	}
	p.used[key] = true
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s=%q is not an integer", key, v)
	}
	return n, nil
}

// Uint consumes key as a uint64, returning def when absent.
func (p *Params) Uint(key string, def uint64) (uint64, error) {
	v, ok := p.vals[key]
	if !ok {
		return def, nil
	}
	p.used[key] = true
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q is not an unsigned integer", key, v)
	}
	return n, nil
}

// Unknown returns an error naming any supplied key no accessor consumed,
// or nil when every argument was recognized.
func (p *Params) Unknown() error {
	var extra []string
	for k := range p.vals {
		if !p.used[k] {
			extra = append(extra, k)
		}
	}
	if len(extra) == 0 {
		return nil
	}
	sort.Strings(extra)
	return fmt.Errorf("unknown argument(s) %s", strings.Join(extra, ", "))
}

// Canonical renders a canonical argument list: the given key=value
// pairs in order, skipping entries with empty values. Callers pass
// pre-formatted values ("%g" floats, decimal integers) so that parsing
// the rendered spec reproduces the same parameters.
func Canonical(pairs ...[2]string) string {
	var parts []string
	for _, kv := range pairs {
		if kv[1] == "" {
			continue
		}
		if kv[0] == "" { // bare flag
			parts = append(parts, kv[1])
			continue
		}
		parts = append(parts, kv[0]+"="+kv[1])
	}
	return strings.Join(parts, ",")
}
