// Command benchguard is the hot-path benchmark regression gate. It
// parses `go test -bench -benchmem` output on stdin, writes the
// measured numbers as a BENCH_hotpath-style JSON report, and compares
// them against a committed baseline:
//
//	go test -run '^$' -bench 'BenchmarkStore' -benchmem ./internal/buffer |
//	    go run ./cmd/benchguard -baseline BENCH_hotpath.json -out BENCH_hotpath.ci.json
//
// Three classes of check, all driven by the baseline file:
//
//   - pairs: each fast/slow benchmark pair (indexed vs scan) must keep
//     its speedup within Tolerance (default 20%) of the baseline's.
//     Speedups are ratios of two benchmarks run on the same machine in
//     the same session, so the gate is machine-independent — raw ns/op
//     from another machine would gate on hardware, not code.
//   - zero_alloc: benchmarks listed here must report 0 allocs/op; the
//     allocation-free fast paths regress loudly if they ever allocate.
//   - mem_pairs: memory gates for the streaming contact sources. The
//     slow (materialized) benchmark must allocate at least min_ratio
//     times the bytes/op of the fast (streaming) one, and likewise for
//     the "resident-B" metric (live heap retained by the contact plan)
//     when both report it. Allocation byte counts are deterministic
//     per code version, so an explicit floor — not a tolerance band —
//     is the right gate: streaming memory creeping toward O(#contacts)
//     collapses the ratio.
//   - -strict additionally compares raw ns/op against the baseline's
//     recorded ns/op with the same tolerance — useful locally on the
//     machine that produced the baseline, too flaky for shared CI.
//
// Exit status is 1 if any check fails, so CI can gate on it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Measurement is one benchmark's parsed result.
type Measurement struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	// BytesOp is -benchmem's B/op column; zero when not reported.
	BytesOp float64 `json:"b_op,omitempty"`
	// ResidentB is the custom "resident-B" metric reported by the
	// schedule-memory benchmarks: live heap bytes retained by the
	// contact plan; zero when not reported.
	ResidentB float64 `json:"resident_b,omitempty"`
}

// MemPair is a streaming benchmark normalized by its materialized
// counterpart: slow must use at least MinRatio times the memory of
// fast, in allocated bytes/op and (when reported) resident bytes.
type MemPair struct {
	Name     string  `json:"name"`
	Fast     string  `json:"fast"`
	Slow     string  `json:"slow"`
	MinRatio float64 `json:"min_ratio"`
	// MinResidentRatio optionally floors the resident-B ratio
	// separately (defaults to MinRatio): residency ratios sit closer to
	// the O(nodes) constant factor than allocation ratios do.
	MinResidentRatio float64 `json:"min_resident_ratio,omitempty"`
	// BytesRatio and ResidentRatio record the measured ratios.
	BytesRatio    float64 `json:"bytes_ratio,omitempty"`
	ResidentRatio float64 `json:"resident_ratio,omitempty"`
}

// Pair is a fast-path benchmark normalized by its reference (slow,
// scan-based) counterpart.
type Pair struct {
	Name string `json:"name"`
	Fast string `json:"fast"`
	Slow string `json:"slow"`
	// Speedup is slow ns/op over fast ns/op as measured.
	Speedup float64 `json:"speedup"`
	// Tolerance optionally overrides the report-level tolerance for
	// this pair: overhead gates (e.g. constrained-vs-unconstrained
	// bookkeeping, baseline speedup ~1.0) want a tighter band than the
	// conservative 10x-speedup floors.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Optional pairs are skipped, not failed, when either benchmark is
	// missing from the input. Hardware-conditional gates use this: the
	// sharded-speedup benchmark skips itself below four cores, so on
	// small machines the pair has nothing to measure.
	Optional bool `json:"optional,omitempty"`
}

// Report is the BENCH_hotpath.json schema: measured numbers plus the
// invariants benchguard enforces.
type Report struct {
	Note       string                 `json:"note,omitempty"`
	Machine    string                 `json:"machine,omitempty"`
	Tolerance  float64                `json:"tolerance,omitempty"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
	Pairs      []Pair                 `json:"pairs"`
	MemPairs   []MemPair              `json:"mem_pairs,omitempty"`
	ZeroAlloc  []string               `json:"zero_alloc,omitempty"`
	// Seed records the pre-rework numbers of this machine for the
	// headline benchmarks, documenting the speedup the rework bought.
	Seed map[string]Measurement `json:"seed,omitempty"`
}

// benchLine matches the name column of a benchmark result row; the
// -N GOMAXPROCS suffix is stripped.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

// parseBench extracts {name → measurement} from `go test -bench` output.
// Rows are "<name> <iters> <value> <unit> [<value> <unit>]..."; only
// ns/op and allocs/op units are kept, b.ReportMetric extras are ignored.
func parseBench(r *bufio.Scanner) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) < 4 {
			continue
		}
		m := benchLine.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		var meas Measurement
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				meas.NsOp = v
				seen = true
			case "allocs/op":
				meas.AllocsOp = v
			case "B/op":
				meas.BytesOp = v
			case "resident-B":
				meas.ResidentB = v
			}
		}
		if seen {
			out[m[1]] = meas
		}
	}
	return out, r.Err()
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline BENCH_hotpath.json to compare against")
	outPath := flag.String("out", "", "write the measured report JSON here")
	tolerance := flag.Float64("tolerance", 0, "allowed fractional regression (0 = baseline's, default 0.20)")
	strict := flag.Bool("strict", false, "also compare raw ns/op against the baseline (same-machine use)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	measured, err := parseBench(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: reading stdin: %v\n", err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark rows on stdin")
		os.Exit(2)
	}

	var baseline Report
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: parsing %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
	}
	tol := *tolerance
	if tol == 0 {
		tol = baseline.Tolerance
	}
	if tol == 0 {
		tol = 0.20
	}

	report := Report{
		Note:       "measured by cmd/benchguard; see EXPERIMENTS.md §hot-path benchmarks",
		Tolerance:  tol,
		Benchmarks: measured,
		ZeroAlloc:  baseline.ZeroAlloc,
		Seed:       baseline.Seed,
	}

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Fprintf(os.Stderr, "benchguard: FAIL: "+format+"\n", args...)
	}

	for _, p := range baseline.Pairs {
		fastM, okF := measured[p.Fast]
		slowM, okS := measured[p.Slow]
		if !okF || !okS {
			if p.Optional {
				fmt.Printf("benchguard: pair %-16s skipped (benchmark not run on this machine)\n", p.Name)
				continue
			}
			fail("pair %q: benchmarks %s/%s missing from input", p.Name, p.Fast, p.Slow)
			continue
		}
		if fastM.NsOp <= 0 {
			fail("pair %q: nonsensical fast ns/op %v", p.Name, fastM.NsOp)
			continue
		}
		speedup := slowM.NsOp / fastM.NsOp
		pairTol := tol
		if p.Tolerance > 0 {
			pairTol = p.Tolerance
		}
		report.Pairs = append(report.Pairs, Pair{
			Name: p.Name, Fast: p.Fast, Slow: p.Slow, Speedup: speedup,
			Tolerance: p.Tolerance, Optional: p.Optional,
		})
		if p.Speedup > 0 && speedup < p.Speedup*(1-pairTol) {
			fail("pair %q: speedup %.2fx fell >%.0f%% below baseline %.2fx (fast path ns/op regressed)",
				p.Name, speedup, pairTol*100, p.Speedup)
		} else {
			fmt.Printf("benchguard: pair %-16s %8.2fx (baseline %.2fx)\n", p.Name, speedup, p.Speedup)
		}
	}

	for _, p := range baseline.MemPairs {
		fastM, okF := measured[p.Fast]
		slowM, okS := measured[p.Slow]
		if !okF || !okS {
			fail("mem pair %q: benchmarks %s/%s missing from input", p.Name, p.Fast, p.Slow)
			continue
		}
		if fastM.BytesOp <= 0 {
			fail("mem pair %q: fast path reports no B/op (run with -benchmem)", p.Name)
			continue
		}
		out := MemPair{Name: p.Name, Fast: p.Fast, Slow: p.Slow,
			MinRatio: p.MinRatio, MinResidentRatio: p.MinResidentRatio}
		out.BytesRatio = slowM.BytesOp / fastM.BytesOp
		if out.BytesRatio < p.MinRatio {
			fail("mem pair %q: bytes/op ratio %.1fx below the %.0fx floor (streaming memory grew)",
				p.Name, out.BytesRatio, p.MinRatio)
		} else {
			fmt.Printf("benchguard: mem  %-16s %8.1fx bytes/op (floor %.0fx)\n", p.Name, out.BytesRatio, p.MinRatio)
		}
		if fastM.ResidentB > 0 && slowM.ResidentB > 0 {
			floor := p.MinResidentRatio
			if floor == 0 {
				floor = p.MinRatio
			}
			out.ResidentRatio = slowM.ResidentB / fastM.ResidentB
			if out.ResidentRatio < floor {
				fail("mem pair %q: resident ratio %.1fx below the %.0fx floor (schedule residency grew)",
					p.Name, out.ResidentRatio, floor)
			} else {
				fmt.Printf("benchguard: mem  %-16s %8.1fx resident (floor %.0fx)\n", p.Name, out.ResidentRatio, floor)
			}
		}
		report.MemPairs = append(report.MemPairs, out)
	}

	for _, name := range baseline.ZeroAlloc {
		m, ok := measured[name]
		if !ok {
			fail("zero-alloc benchmark %s missing from input", name)
			continue
		}
		if m.AllocsOp != 0 {
			fail("%s allocates %.0f allocs/op, want 0", name, m.AllocsOp)
		}
	}

	if *strict {
		for name, base := range baseline.Benchmarks {
			m, ok := measured[name]
			if !ok {
				continue
			}
			if base.NsOp > 0 && m.NsOp > base.NsOp*(1+tol) {
				fail("%s: %.0f ns/op is >%.0f%% above baseline %.0f ns/op",
					name, m.NsOp, tol*100, base.NsOp)
			}
		}
	}

	if *outPath != "" {
		buf, err := json.MarshalIndent(report, "", "\t")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmarks OK\n", len(measured))
}
