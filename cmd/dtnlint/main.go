// Command dtnlint is the project's static-analysis gate: a
// multichecker composing the determinism and hot-path analyzers in
// internal/analysis (maporder, rngdiscipline, hotpathalloc,
// errsentinel). CI runs it over ./... as a required job; it exits
// nonzero on any unsuppressed diagnostic and on //lint:allow
// suppressions exceeding the committed budget file, so neither
// violations nor escape hatches can accumulate silently.
//
// Usage:
//
//	dtnlint [-C dir] [-json] [-budget file] [-list] [packages...]
//
// Suppress one finding with a reasoned annotation on, or directly
// above, the offending line:
//
//	//lint:allow maporder victim scan is order-insensitive by seeded draw
//
// Upstream passes (nilness, shadow) are not composed yet: they live in
// golang.org/x/tools, which this module deliberately does not depend
// on. The internal/analysis framework mirrors that API so they can be
// added the day the dependency is vendored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dtnsim/internal/analysis"
	"dtnsim/internal/analysis/errsentinel"
	"dtnsim/internal/analysis/hotpathalloc"
	"dtnsim/internal/analysis/maporder"
	"dtnsim/internal/analysis/rngdiscipline"
)

// suite is the composed analyzer set, in report order.
var suite = []*analysis.Analyzer{
	maporder.Analyzer,
	rngdiscipline.Analyzer,
	hotpathalloc.Analyzer,
	errsentinel.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json output document.
type jsonReport struct {
	Diagnostics  []analysis.Diagnostic `json:"diagnostics"`
	AllowCounts  map[string]int        `json:"allow_counts"`
	BudgetErrors []string              `json:"budget_errors,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dtnlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", "", "run as if in `dir` (packages and the budget file resolve there)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of file:line diagnostics")
	budgetPath := fs.String("budget", ".dtnlint-budget.json", "suppression budget `file`; missing file skips the budget gate")
	list := fs.Bool("list", false, "list the composed analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	res, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var budgetErrs []string
	bpath := *budgetPath
	if *dir != "" && !os.IsPathSeparator(bpath[0]) {
		bpath = *dir + string(os.PathSeparator) + bpath
	}
	if budget, err := analysis.LoadBudget(bpath); err == nil {
		budgetErrs = budget.Check(res.AllowCounts)
	} else if !os.IsNotExist(err) {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{
			Diagnostics:  res.Diagnostics,
			AllowCounts:  res.AllowCounts,
			BudgetErrors: budgetErrs,
		}); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			if d.Suppressed {
				continue
			}
			fmt.Fprintf(stdout, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
		if n := len(res.Diagnostics) - len(res.Unsuppressed()); n > 0 {
			fmt.Fprintf(stderr, "dtnlint: %d finding(s) suppressed by //lint:allow\n", n)
		}
		for _, e := range budgetErrs {
			fmt.Fprintf(stdout, "%s\n", e)
		}
	}

	if len(res.Unsuppressed()) > 0 || len(budgetErrs) > 0 {
		return 1
	}
	return 0
}
