module dtnsim/internal/core

go 1.22
