// Package core is a deliberately broken fixture: its module path puts
// it inside the simulation-package set maporder polices, and collect()
// ranges over a map into an order-sensitive slice with no sort after
// the loop. The dtnlint smoke test asserts this fails the gate —
// proving a map-range seeded into internal/core cannot pass CI.
package core

func collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
