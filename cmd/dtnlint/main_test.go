package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTreeIsClean is the smoke test CI leans on: the full module must
// carry zero unsuppressed diagnostics and stay inside the committed
// suppression budget. A new violation anywhere in internal/ or cmd/
// turns this red before the lint job even runs.
func TestTreeIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("dtnlint over the tree exited %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); out != "" {
		t.Errorf("expected no diagnostics on stdout, got:\n%s", out)
	}
}

// TestSeededMapRangeFails pins the acceptance criterion from the issue:
// a deliberate order-sensitive map range in a package under
// dtnsim/internal/core must fail the lint gate. The fixture module in
// testdata/badcore claims that import path.
func TestSeededMapRangeFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata/badcore", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "maporder") || !strings.Contains(out, "bad.go") {
		t.Errorf("diagnostic should name maporder and bad.go, got:\n%s", out)
	}
}

// TestSeededMapRangeFailsJSON checks the machine-readable output path
// on the same fixture.
func TestSeededMapRangeFailsJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata/badcore", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{`"diagnostics"`, `"analyzer": "maporder"`, `bad.go`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
}

// TestListAnalyzers keeps the composed suite honest: all four passes
// must be registered.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	out := stdout.String()
	for _, name := range []string{"maporder", "rngdiscipline", "hotpathalloc", "errsentinel"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}
}
