// Command figures regenerates every figure and table from the paper's
// evaluation section: Fig. 7–20, Table II, and the §V-C signaling
// overhead comparison. For each experiment it writes a CSV under -out
// and prints the series as an aligned table and an ASCII chart.
//
// Usage:
//
//	figures                     # everything, paper parameters (10 runs)
//	figures -runs 3 -only fig07,fig13
//	figures -out results -seed 7
//	figures -workers 4          # bound the simulation worker pool
//	figures -specs              # also write each figure as SweepSpec JSON
//	figures -only scale         # the 1k/5k/10k-node scale sweep
//	figures -only scale -scale-nodes 1000,5000 -scale-runs 1
//	figures -only constrained   # the finite-bandwidth resource sweep
//
// The scale sweep is the node-count axis the streaming contact sources
// open (DESIGN.md §8): delivery ratio, per-bundle delay and buffer
// occupancy versus population under constant-density classic RWP. It
// is not part of the default set — populations in the thousands take
// minutes, so ask for it with -only scale.
//
// Every figure's sweep is built from registry specs, so -specs can
// serialize it: the written <id>.sweep.json files re-run through
// `dtnsim.ParseSweepSpec` (or any future runner) with bit-identical
// results.
//
// Each experiment's (protocol, load, run) grid executes on a worker
// pool of -workers goroutines (default: all CPUs). Results are
// bit-identical for every worker count; -workers 1 forces the
// sequential path.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dtnsim"
)

func main() {
	var (
		outDir     = flag.String("out", "results", "directory for CSV output")
		runs       = flag.Int("runs", 10, "runs per (protocol, load) point; the paper uses 10")
		seed       = flag.Uint64("seed", 2012, "base seed")
		only       = flag.String("only", "", "comma-separated experiment ids (default: all, plus fig14 and table2; 'scale' only runs when asked)")
		plots      = flag.Bool("plots", true, "print ASCII charts")
		quiet      = flag.Bool("q", false, "suppress progress output")
		workers    = flag.Int("workers", 0, "concurrent simulation runs per sweep (0 = all CPUs, 1 = sequential; results are identical)")
		specs      = flag.Bool("specs", false, "also write each experiment's serializable SweepSpec as <id>.sweep.json")
		scaleNodes = flag.String("scale-nodes", "1000,5000,10000", "node counts for -only scale")
		scaleRuns  = flag.Int("scale-runs", 3, "runs per (protocol, nodes) scale point")
	)
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	for _, f := range dtnsim.AllExperiments() {
		if !want(f.ID) {
			continue
		}
		if f.ID == "fig14" {
			continue // handled as a scenario pair below
		}
		f.Sweep.Runs = *runs
		f.Sweep.BaseSeed = *seed
		f.Sweep.Workers = *workers
		if *specs {
			emitSpec(*outDir, f.ID, f.Sweep)
		}
		if !*quiet {
			f.Sweep.OnPoint = func(label string, load int) {
				fmt.Fprintf(os.Stderr, "\r%s: %-40s load %2d   ", f.ID, label, load)
			}
		}
		res, err := dtnsim.RunSweep(f.Sweep)
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		table := dtnsim.TableOf(res, f.Metric, fmt.Sprintf("%s: %s", f.ID, f.Title))
		emit(*outDir, f.ID, table, *plots)
		fmt.Printf("expected shape: %s\n\n", f.Expect)
	}

	if want("fig14") {
		runFig14(*outDir, *runs, *seed, *workers, *plots, *specs)
	}
	if want("table2") {
		runTableII(*outDir, *runs, *seed, *workers)
	}
	// The scale and constrained sweeps run only when explicitly selected.
	if selected["scale"] {
		runScale(*outDir, *scaleNodes, *scaleRuns, *seed, *workers, *quiet)
	}
	if selected["constrained"] {
		runConstrained(*outDir, *runs, *seed, *workers, *quiet)
	}
}

// runConstrained executes the bandwidth sweep (DESIGN.md §9) and writes
// constrained.csv: delivery ratio, per-bundle delay and drop counts
// versus contact bandwidth for each (protocol, drop policy) series at a
// fixed load of sized bundles.
func runConstrained(outDir string, runs int, seed uint64, workers int, quiet bool) {
	sw := dtnsim.DefaultConstrainedSweep()
	sw.Runs = runs
	sw.BaseSeed = seed
	sw.Workers = workers
	if !quiet {
		sw.OnPoint = func(label string, bw float64) {
			fmt.Fprintf(os.Stderr, "\rconstrained: %-36s bw %8.0f B/s   ", label, bw)
		}
	}
	res, err := dtnsim.RunConstrained(sw)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	var csv strings.Builder
	csv.WriteString("bandwidth_Bps,protocol,drop_policy,delivery_ratio,mean_delay_s,drops,byte_dropped,refused,completed,runs\n")
	fmt.Println("constrained: delivery / delay / drops vs contact bandwidth (1 MB bundles, byte-bounded buffers)")
	for _, s := range res.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&csv, "%g,%q,%q,%.4f,%.1f,%.1f,%.1f,%.1f,%d,%d\n",
				p.Bandwidth, s.Protocol, s.Policy, p.Delivery, p.Delay, p.Drops, p.ByteDropped, p.Refused, p.Completed, p.Runs)
			fmt.Printf("  %-36s %8.0f B/s: delivery %.3f, delay %8.0f s, drops %6.1f (bytepressure %.1f, refused %.1f)\n",
				s.Label, p.Bandwidth, p.Delivery, p.Delay, p.Drops, p.ByteDropped, p.Refused)
		}
	}
	if err := os.WriteFile(filepath.Join(outDir, "constrained.csv"), []byte(csv.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("expected shape: delivery rises with bandwidth; once byte pressure binds, dropfront/droprandom out-deliver droptail for TTL-less flooding (fresh copies displace stale ones)")
}

// runScale executes the population sweep and writes scale.csv:
// delivery ratio, per-bundle delay and buffer occupancy versus node
// count for each protocol, each run streaming its mobility source.
func runScale(outDir, nodesCSV string, runs int, seed uint64, workers int, quiet bool) {
	sw := dtnsim.DefaultScaleSweep()
	sw.Runs = runs
	sw.BaseSeed = seed
	sw.Workers = workers
	sw.Nodes = sw.Nodes[:0]
	for _, f := range strings.Split(nodesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			fatal(fmt.Errorf("bad -scale-nodes entry %q", f))
		}
		sw.Nodes = append(sw.Nodes, n)
	}
	if !quiet {
		sw.OnPoint = func(label string, nodes int) {
			fmt.Fprintf(os.Stderr, "\rscale: %-24s %6d nodes   ", label, nodes)
		}
	}
	res, err := dtnsim.RunScale(sw)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	var csv strings.Builder
	csv.WriteString("nodes,protocol,delivery_ratio,mean_delay_s,occupancy,completed,runs\n")
	fmt.Println("scale: delivery / delay / occupancy vs population (streaming mobility)")
	for _, s := range res.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&csv, "%d,%q,%.4f,%.1f,%.4f,%d,%d\n",
				p.Nodes, s.Label, p.Delivery, p.Delay, p.Occupancy, p.Completed, p.Runs)
			fmt.Printf("  %-24s %6d nodes: delivery %.3f, delay %8.0f s, occupancy %.3f\n",
				s.Label, p.Nodes, p.Delivery, p.Delay, p.Occupancy)
		}
	}
	if err := os.WriteFile(filepath.Join(outDir, "scale.csv"), []byte(csv.String()), 0o644); err != nil {
		fatal(err)
	}
}

func runFig14(outDir string, runs int, seed uint64, workers int, plots, specs bool) {
	short, long := dtnsim.Fig14Pair()
	short.Runs, long.Runs = runs, runs
	short.BaseSeed, long.BaseSeed = seed, seed
	short.Workers, long.Workers = workers, workers
	if specs {
		emitSpec(outDir, "fig14_400", short)
		emitSpec(outDir, "fig14_2000", long)
	}
	rs, err := dtnsim.RunSweep(short)
	if err != nil {
		fatal(err)
	}
	rl, err := dtnsim.RunSweep(long)
	if err != nil {
		fatal(err)
	}
	// Merge the two single-series results into one two-column table.
	merged := &dtnsim.SweepResult{
		Scenario: "interval",
		Loads:    rs.Loads,
		Series: []dtnsim.Series{
			{Label: "Interval time = 400", Points: rs.Series[0].Points},
			{Label: "Interval time = 2000", Points: rl.Series[0].Points},
		},
	}
	table := dtnsim.TableOf(merged, dtnsim.MetricDelivery,
		"fig14: Delivery ratio of epidemic with TTL=300 under interval 400 vs 2000")
	emit(outDir, "fig14", table, plots)
	fmt.Printf("expected shape: the 2000 s scenario delivers >=20%% less\n\n")
}

func runTableII(outDir string, runs int, seed uint64, workers int) {
	fmt.Fprintln(os.Stderr, "table2: running both mobility sources...")
	rows, err := dtnsim.TableIIWorkers(seed, runs, workers)
	if err != nil {
		fatal(err)
	}
	text := dtnsim.RenderTableII(rows)
	fmt.Println(text)
	var csv strings.Builder
	csv.WriteString("protocol,delivery_rwp,delivery_trace,occupancy_rwp,occupancy_trace,duplication_rwp,duplication_trace\n")
	for _, r := range rows {
		fmt.Fprintf(&csv, "%q,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			r.Protocol, r.DeliveryRWP, r.DeliveryTr, r.OccupancyRWP, r.OccupancyTr, r.DupRWP, r.DupTr)
	}
	if err := os.WriteFile(filepath.Join(outDir, "table2.csv"), []byte(csv.String()), 0o644); err != nil {
		fatal(err)
	}
}

// emitSpec writes a sweep's serializable form next to its CSV.
func emitSpec(outDir, id string, sweep dtnsim.Sweep) {
	sp, err := dtnsim.SweepSpecOf(id, sweep)
	if err != nil {
		fatal(err)
	}
	data, err := sp.JSON()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(outDir, id+".sweep.json"), append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func emit(outDir, id string, table *dtnsim.ResultTable, plots bool) {
	if err := os.WriteFile(filepath.Join(outDir, id+".csv"), []byte(table.CSV()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(table.ASCII())
	if plots {
		fmt.Println(table.Plot(64, 16))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
