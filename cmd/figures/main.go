// Command figures regenerates every figure and table from the paper's
// evaluation section: Fig. 7–20, Table II, and the §V-C signaling
// overhead comparison. For each experiment it writes a CSV under -out
// and prints the series as an aligned table and an ASCII chart.
//
// Usage:
//
//	figures                     # everything, paper parameters (10 runs)
//	figures -runs 3 -only fig07,fig13
//	figures -out results -seed 7
//	figures -workers 4          # bound the simulation worker pool
//	figures -specs              # also write each figure as SweepSpec JSON
//	figures -only scale         # the 1k/5k/10k-node scale sweep
//	figures -only scale -scale-nodes 1000,5000 -scale-runs 1
//	figures -only constrained   # the finite-bandwidth resource sweep
//
// The scale sweep is the node-count axis the streaming contact sources
// open (DESIGN.md §8): delivery ratio, per-bundle delay and buffer
// occupancy versus population under constant-density classic RWP. It
// is not part of the default set — populations in the thousands take
// minutes, so ask for it with -only scale.
//
// Every figure's sweep is built from registry specs, so -specs can
// serialize it: the written <id>.sweep.json files re-run through
// `dtnsim.ParseSweepSpec` (or any future runner) with bit-identical
// results.
//
// Each experiment's (protocol, load, run) grid executes on a worker
// pool of -workers goroutines (default: all CPUs). Results are
// bit-identical for every worker count; -workers 1 forces the
// sequential path.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dtnsim"
)

func main() {
	var (
		outDir     = flag.String("out", "results", "directory for CSV output")
		runs       = flag.Int("runs", 10, "runs per (protocol, load) point; the paper uses 10")
		seed       = flag.Uint64("seed", 2012, "base seed")
		only       = flag.String("only", "", "comma-separated experiment ids (default: all, plus fig14 and table2; 'scale' only runs when asked)")
		plots      = flag.Bool("plots", true, "print ASCII charts")
		quiet      = flag.Bool("q", false, "suppress progress output")
		workers    = flag.Int("workers", 0, "concurrent simulation runs per sweep (0 = all CPUs, 1 = sequential; results are identical)")
		specs      = flag.Bool("specs", false, "also write each experiment's serializable SweepSpec as <id>.sweep.json")
		shards     = flag.Int("shards", 1, "per-run executor shards (1 = classic sequential engine, 0 = one shard per CPU, K>=2 = K worker shards; results are bit-identical)")
		scaleNodes = flag.String("scale-nodes", "1000,5000,10000", "node counts for -only scale")
		scaleRuns  = flag.Int("scale-runs", 3, "runs per (protocol, nodes) scale point")
		scaleSpan  = flag.Float64("scale-span", 50000, "simulated seconds per scale run (shorter spans keep 100k-node cells inside a time budget)")
		scaleCores = flag.Int("scale-speedup-nodes", 5000, "population for the speedup-vs-cores rows appended to scale.csv (0 disables)")
	)
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	for _, f := range dtnsim.AllExperiments() {
		if !want(f.ID) {
			continue
		}
		if f.ID == "fig14" {
			continue // handled as a scenario pair below
		}
		f.Sweep.Runs = *runs
		f.Sweep.BaseSeed = *seed
		f.Sweep.Workers = *workers
		f.Sweep.Shards = shardCount(*shards)
		if *specs {
			emitSpec(*outDir, f.ID, f.Sweep)
		}
		if !*quiet {
			f.Sweep.OnPoint = func(label string, load int) {
				fmt.Fprintf(os.Stderr, "\r%s: %-40s load %2d   ", f.ID, label, load)
			}
		}
		res, err := dtnsim.RunSweep(f.Sweep)
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		table := dtnsim.TableOf(res, f.Metric, fmt.Sprintf("%s: %s", f.ID, f.Title))
		emit(*outDir, f.ID, table, *plots)
		fmt.Printf("expected shape: %s\n\n", f.Expect)
	}

	if want("fig14") {
		runFig14(*outDir, *runs, *seed, *workers, shardCount(*shards), *plots, *specs)
	}
	if want("table2") {
		runTableII(*outDir, *runs, *seed, *workers)
	}
	// The scale and constrained sweeps run only when explicitly selected.
	if selected["scale"] {
		runScale(*outDir, *scaleNodes, *scaleRuns, *seed, *workers,
			shardCount(*shards), *scaleSpan, *scaleCores, *quiet)
	}
	if selected["constrained"] {
		runConstrained(*outDir, *runs, *seed, *workers, *quiet)
	}
}

// runConstrained executes the bandwidth sweep (DESIGN.md §9) and writes
// constrained.csv: delivery ratio, per-bundle delay and drop counts
// versus contact bandwidth for each (protocol, drop policy) series at a
// fixed load of sized bundles.
func runConstrained(outDir string, runs int, seed uint64, workers int, quiet bool) {
	sw := dtnsim.DefaultConstrainedSweep()
	sw.Runs = runs
	sw.BaseSeed = seed
	sw.Workers = workers
	if !quiet {
		sw.OnPoint = func(label string, bw float64) {
			fmt.Fprintf(os.Stderr, "\rconstrained: %-36s bw %8.0f B/s   ", label, bw)
		}
	}
	res, err := dtnsim.RunConstrained(sw)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	var csv strings.Builder
	csv.WriteString("bandwidth_Bps,protocol,drop_policy,delivery_ratio,mean_delay_s,drops,byte_dropped,refused,completed,runs\n")
	fmt.Println("constrained: delivery / delay / drops vs contact bandwidth (1 MB bundles, byte-bounded buffers)")
	for _, s := range res.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&csv, "%g,%q,%q,%.4f,%.1f,%.1f,%.1f,%.1f,%d,%d\n",
				p.Bandwidth, s.Protocol, s.Policy, p.Delivery, p.Delay, p.Drops, p.ByteDropped, p.Refused, p.Completed, p.Runs)
			fmt.Printf("  %-36s %8.0f B/s: delivery %.3f, delay %8.0f s, drops %6.1f (bytepressure %.1f, refused %.1f)\n",
				s.Label, p.Bandwidth, p.Delivery, p.Delay, p.Drops, p.ByteDropped, p.Refused)
		}
	}
	if err := os.WriteFile(filepath.Join(outDir, "constrained.csv"), []byte(csv.String()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("expected shape: delivery rises with bandwidth; once byte pressure binds, dropfront/droprandom out-deliver droptail for TTL-less flooding (fresh copies displace stale ones)")
}

// shardCount maps the -shards flag onto core.Config.Shards: the flag
// speaks in worker counts (1 = today's sequential engine, 0 = one shard
// per CPU), the config in executors (0 = sequential loop, K >= 1 =
// sharded with K workers).
func shardCount(flagVal int) int {
	switch {
	case flagVal == 1:
		return 0
	case flagVal == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return flagVal
	}
}

// monotonicSeconds is the wall-clock hook injected into scale sweeps.
// Timing lives here, in cmd, on purpose: the deterministic harness under
// internal/ never reads a real clock (the rngdiscipline lint enforces
// it), so measurement enters only through this hook.
func monotonicSeconds() float64 { return time.Since(processStart).Seconds() }

var processStart = time.Now()

// runScale executes the population sweep and writes scale.csv: delivery
// ratio, per-bundle delay, buffer occupancy and wall-clock versus node
// count for each protocol, each run streaming its mobility source. When
// speedupNodes > 0 it appends speedup-vs-cores rows: the same cell run
// sequentially and at 2, 4, ... worker shards, whose identical delivery
// and delay columns are the determinism contract made visible and whose
// speedup column is sequential wall-clock over sharded.
func runScale(outDir, nodesCSV string, runs int, seed uint64, workers, shards int, span float64, speedupNodes int, quiet bool) {
	sw := dtnsim.DefaultScaleSweep()
	sw.Runs = runs
	sw.BaseSeed = seed
	sw.Workers = workers
	sw.Shards = shards
	sw.Span = span
	sw.Clock = monotonicSeconds
	sw.Nodes = sw.Nodes[:0]
	for _, f := range strings.Split(nodesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			fatal(fmt.Errorf("bad -scale-nodes entry %q", f))
		}
		sw.Nodes = append(sw.Nodes, n)
	}
	if !quiet {
		sw.OnPoint = func(label string, nodes int) {
			fmt.Fprintf(os.Stderr, "\rscale: %-24s %6d nodes   ", label, nodes)
		}
	}
	res, err := dtnsim.RunScale(sw)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
	var csv strings.Builder
	csv.WriteString("nodes,protocol,shards,delivery_ratio,mean_delay_s,occupancy,completed,runs,wall_clock_s,speedup\n")
	fmt.Println("scale: delivery / delay / occupancy / wall-clock vs population (streaming mobility)")
	cores := shards
	if cores == 0 {
		cores = 1
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&csv, "%d,%q,%d,%.4f,%.1f,%.4f,%d,%d,%.3f,\n",
				p.Nodes, s.Label, cores, p.Delivery, p.Delay, p.Occupancy, p.Completed, p.Runs, p.WallClock)
			fmt.Printf("  %-24s %6d nodes: delivery %.3f, delay %8.0f s, occupancy %.3f, %7.2f s/run\n",
				s.Label, p.Nodes, p.Delivery, p.Delay, p.Occupancy, p.WallClock)
		}
	}
	if speedupNodes > 0 {
		runScaleSpeedup(&csv, sw, speedupNodes, quiet)
	}
	if err := os.WriteFile(filepath.Join(outDir, "scale.csv"), []byte(csv.String()), 0o644); err != nil {
		fatal(err)
	}
}

// runScaleSpeedup appends the speedup-vs-cores rows: one (protocol,
// nodes) cell timed sequentially, then at doubling shard counts up to
// the CPU count, one run each with the grid serialized (Workers=1) so
// every shard has the machine to itself.
func runScaleSpeedup(csv *strings.Builder, base dtnsim.ScaleSweep, nodes int, quiet bool) {
	shardCounts := []int{0} // the sequential reference
	for k := 2; k < runtime.GOMAXPROCS(0); k *= 2 {
		shardCounts = append(shardCounts, k)
	}
	if max := runtime.GOMAXPROCS(0); max > 1 {
		shardCounts = append(shardCounts, max)
	}
	fmt.Printf("scale: speedup vs cores at %d nodes (1 timed run per shard count)\n", nodes)
	seqWall := 0.0
	for _, k := range shardCounts {
		sw := base
		sw.Nodes = []int{nodes}
		sw.Protocols = sw.Protocols[:1]
		sw.Runs = 1
		sw.Workers = 1
		sw.Shards = k
		sw.OnPoint = nil
		if !quiet {
			fmt.Fprintf(os.Stderr, "\rscale: speedup %6d nodes, %d shard(s)   ", nodes, k)
		}
		res, err := dtnsim.RunScale(sw)
		if err != nil {
			fatal(err)
		}
		p := res.Series[0].Points[0]
		cores := k
		if cores == 0 {
			cores = 1
			seqWall = p.WallClock
		}
		speedup := seqWall / p.WallClock
		fmt.Fprintf(csv, "%d,%q,%d,%.4f,%.1f,%.4f,%d,%d,%.3f,%.2f\n",
			p.Nodes, res.Series[0].Label, cores, p.Delivery, p.Delay, p.Occupancy, p.Completed, p.Runs, p.WallClock, speedup)
		fmt.Printf("  %2d core(s): %7.2f s, speedup %.2fx\n", cores, p.WallClock, speedup)
	}
	if !quiet {
		fmt.Fprintln(os.Stderr)
	}
}

func runFig14(outDir string, runs int, seed uint64, workers, shards int, plots, specs bool) {
	short, long := dtnsim.Fig14Pair()
	short.Runs, long.Runs = runs, runs
	short.BaseSeed, long.BaseSeed = seed, seed
	short.Workers, long.Workers = workers, workers
	short.Shards, long.Shards = shards, shards
	if specs {
		emitSpec(outDir, "fig14_400", short)
		emitSpec(outDir, "fig14_2000", long)
	}
	rs, err := dtnsim.RunSweep(short)
	if err != nil {
		fatal(err)
	}
	rl, err := dtnsim.RunSweep(long)
	if err != nil {
		fatal(err)
	}
	// Merge the two single-series results into one two-column table.
	merged := &dtnsim.SweepResult{
		Scenario: "interval",
		Loads:    rs.Loads,
		Series: []dtnsim.Series{
			{Label: "Interval time = 400", Points: rs.Series[0].Points},
			{Label: "Interval time = 2000", Points: rl.Series[0].Points},
		},
	}
	table := dtnsim.TableOf(merged, dtnsim.MetricDelivery,
		"fig14: Delivery ratio of epidemic with TTL=300 under interval 400 vs 2000")
	emit(outDir, "fig14", table, plots)
	fmt.Printf("expected shape: the 2000 s scenario delivers >=20%% less\n\n")
}

func runTableII(outDir string, runs int, seed uint64, workers int) {
	fmt.Fprintln(os.Stderr, "table2: running both mobility sources...")
	rows, err := dtnsim.TableIIWorkers(seed, runs, workers)
	if err != nil {
		fatal(err)
	}
	text := dtnsim.RenderTableII(rows)
	fmt.Println(text)
	var csv strings.Builder
	csv.WriteString("protocol,delivery_rwp,delivery_trace,occupancy_rwp,occupancy_trace,duplication_rwp,duplication_trace\n")
	for _, r := range rows {
		fmt.Fprintf(&csv, "%q,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			r.Protocol, r.DeliveryRWP, r.DeliveryTr, r.OccupancyRWP, r.OccupancyTr, r.DupRWP, r.DupTr)
	}
	if err := os.WriteFile(filepath.Join(outDir, "table2.csv"), []byte(csv.String()), 0o644); err != nil {
		fatal(err)
	}
}

// emitSpec writes a sweep's serializable form next to its CSV.
func emitSpec(outDir, id string, sweep dtnsim.Sweep) {
	sp, err := dtnsim.SweepSpecOf(id, sweep)
	if err != nil {
		fatal(err)
	}
	data, err := sp.JSON()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(outDir, id+".sweep.json"), append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func emit(outDir, id string, table *dtnsim.ResultTable, plots bool) {
	if err := os.WriteFile(filepath.Join(outDir, id+".csv"), []byte(table.CSV()), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(table.ASCII())
	if plots {
		fmt.Println(table.Plot(64, 16))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
