// Command dtnsim-worker is the worker half of the distributed executor
// (DESIGN.md §13). It is not run by hand: a coordinator — dtnsim
// -dist-workers or dtnsimd -workers-exec — spawns N of these, speaks
// the internal/dist/frame protocol over stdin/stdout (one Init, then
// epoch rounds), and closes stdin to shut the worker down.
//
// All simulation state lives in the coordinator; the worker only
// executes the epoch items it is sent over the node snapshots shipped
// with them, so it has no flags and no files — stderr is its only
// other channel, inherited by the coordinator for crash diagnostics.
package main

import (
	"fmt"
	"os"

	"dtnsim/internal/dist"
)

func main() {
	if err := dist.Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtnsim-worker:", err)
		os.Exit(1)
	}
}
