// Command dtnsim-worker is the worker half of the distributed executor
// (DESIGN.md §13). It is not run by hand in pipe mode: a coordinator —
// dtnsim -dist-workers or dtnsimd -workers-exec — spawns N of these,
// speaks the internal/dist/frame protocol over stdin/stdout (a Hello
// handshake, one Init, then epoch rounds), and closes stdin to shut
// the worker down.
//
// With -listen host:port the worker instead serves coordinators over
// TCP: each accepted connection gets an independent protocol session,
// so one listening worker can serve several worker slots of one run
// (dtnsim -dist-hosts round-robins slots across hosts) and outlives
// individual coordinator sessions — which is what makes re-dial
// recovery possible after a connection loss. -tls-cert/-tls-key
// upgrade the listener to TLS; coordinators trust it via -dist-ca.
//
// All simulation state lives in the coordinator; the worker only
// executes the epoch items it is sent over the node snapshots (or
// cache references) shipped with them, so it keeps no files — stderr
// is its only other channel. -fail-rounds N drops the first session's
// connection before its Nth round reply, the fault-injection hook the
// CI kill-a-worker smoke leg uses to prove replay recovery.
package main

import (
	"bufio"
	"crypto/tls"
	"flag"
	"fmt"
	"net"
	"os"
	"sync/atomic"

	"dtnsim/internal/dist"
)

func main() {
	var (
		listenFlag = flag.String("listen", "", "serve coordinators over TCP at this host:port instead of stdin/stdout")
		certFlag   = flag.String("tls-cert", "", "PEM certificate for the -listen socket (requires -tls-key)")
		keyFlag    = flag.String("tls-key", "", "PEM private key for the -listen socket (requires -tls-cert)")
		failFlag   = flag.Int("fail-rounds", 0, "fault injection: drop the first session's connection before its Nth round reply (0 = off)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}
	if (*certFlag == "") != (*keyFlag == "") {
		fatal(fmt.Errorf("-tls-cert and -tls-key must be set together"))
	}
	opts := dist.ServeOpts{FailAfterRounds: *failFlag}

	if *listenFlag == "" {
		if *certFlag != "" {
			fatal(fmt.Errorf("-tls-cert applies to -listen mode only"))
		}
		if err := dist.ServeWith(os.Stdin, os.Stdout, opts); err != nil {
			fatal(err)
		}
		return
	}

	ln, err := listen(*listenFlag, *certFlag, *keyFlag)
	if err != nil {
		fatal(err)
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "dtnsim-worker: listening on %s\n", ln.Addr())
	serveListener(ln, opts)
}

// listen opens the TCP listener, TLS-wrapped when a certificate is
// configured.
func listen(addr, certFile, keyFile string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if certFile == "" {
		return ln, nil
	}
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}}), nil
}

// serveListener accepts coordinator connections forever, serving each
// in its own goroutine with fresh session state. Fault injection is
// claimed by the first connection that actually sends protocol bytes —
// not merely the first accepted, so TCP health probes (CI's
// wait-for-port loop, load-balancer checks) cannot absorb it — and a
// killed session's replacement connection (the coordinator's re-dial)
// runs clean.
func serveListener(ln net.Listener, opts dist.ServeOpts) {
	var claimed atomic.Bool
	for {
		c, err := ln.Accept()
		if err != nil {
			fatal(err)
		}
		go func() {
			defer c.Close()
			br := bufio.NewReader(c)
			if _, err := br.Peek(1); err != nil {
				return // probe: connected and closed without speaking
			}
			sessOpts := dist.ServeOpts{}
			if opts.FailAfterRounds > 0 && claimed.CompareAndSwap(false, true) {
				sessOpts = opts
			}
			if err := dist.ServeWith(br, c, sessOpts); err != nil {
				fmt.Fprintln(os.Stderr, "dtnsim-worker: session:", err)
			}
		}()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtnsim-worker:", err)
	os.Exit(1)
}
