// Command dtnsimd serves DTN simulations over HTTP: clients POST a
// scenario or sweep spec (the same JSON documents cmd/dtnsim -scenario
// and -dump produce) to /v1/jobs and poll the returned job id. Results
// are cached on disk under the spec's canonical content key, so
// resubmitting an equivalent spec — any JSON spelling, any worker
// count, even after a daemon restart — answers instantly with
// byte-identical bodies and runs no simulation.
//
// Endpoints:
//
//	POST   /v1/jobs               submit {"scenario": {...}} or {"sweep": {...}}
//	GET    /v1/jobs/{id}          job status
//	DELETE /v1/jobs/{id}          cancel a running job
//	GET    /v1/jobs/{id}/result   result JSON (deterministic bytes)
//	GET    /v1/jobs/{id}/series   metric-sample CSV (scenario) / sweep tables CSV
//	GET    /v1/jobs/{id}/events   full engine event CSV (scenario jobs)
//	GET    /v1/specs              registered protocol/mobility specs
//	GET    /healthz               liveness
//	GET    /metrics               job-manager counters (JSON)
//
// On SIGINT/SIGTERM the daemon stops accepting requests, lets running
// jobs finish for -drain, then cancels whatever remains (in-flight
// engine loops abort at their next interrupt poll) and exits.
//
// Usage:
//
//	dtnsimd -addr :8642 -cache /var/cache/dtnsimd -workers 4 -job-timeout 10m
//	dtnsimd -workers-exec 4                 # scenario jobs on worker processes
//	dtnsimd -workers-hosts hostA:9761,hostB:9761   # ... on remote workers over TCP
//
// With -workers-exec N each scenario job's epochs execute on N spawned
// dtnsim-worker processes (DESIGN.md §13); with -workers-hosts the
// workers are instead dialed over TCP at those host:port addresses
// (dtnsim-worker -listen on each machine; -workers-ca verifies them
// over TLS), and -workers-exec chooses how many worker slots
// round-robin across the hosts (default: one per host). Distributed
// results are byte-identical to in-process ones, so the cache is
// oblivious to the executor: entries computed either way hit for both.
//
// See EXPERIMENTS.md ("Running the service") for curl examples and
// DESIGN.md §11 for the architecture.
package main

import (
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dtnsim/internal/dist"
	"dtnsim/internal/dist/transport"
	"dtnsim/internal/server"
)

func main() {
	var (
		addrFlag    = flag.String("addr", ":8642", "listen address")
		cacheFlag   = flag.String("cache", "dtnsimd-cache", "result cache directory (created if missing)")
		workersFlag = flag.Int("workers", 0, "max concurrently executing jobs (0 = all CPUs)")
		timeoutFlag = flag.Duration("job-timeout", 0, "per-job wall-time cap from submission, e.g. 10m (0 = none)")
		drainFlag   = flag.Duration("drain", 30*time.Second, "how long running jobs may finish after SIGTERM before being cancelled")
		execFlag    = flag.Int("workers-exec", 0, "execute each scenario job's epochs on N dtnsim-worker processes (0 = in-process; cached bytes are identical either way)")
		hostsFlag   = flag.String("workers-hosts", "", "comma-separated host:port list of dtnsim-worker -listen processes to execute scenario jobs on over TCP")
		caFlag      = flag.String("workers-ca", "", "PEM CA bundle that -workers-hosts connections must verify against (enables TLS)")
		binFlag     = flag.String("worker-bin", "", "dtnsim-worker binary for -workers-exec (default: sibling of this executable, then $PATH)")
	)
	flag.Parse()

	var workerTLS *tls.Config
	if *caFlag != "" {
		cfg, err := transport.ClientCAs(*caFlag)
		if err != nil {
			fatal(err)
		}
		workerTLS = cfg
	}
	srv, err := server.New(server.Options{
		CacheDir:   *cacheFlag,
		Workers:    *workersFlag,
		JobTimeout: *timeoutFlag,
		Dist: dist.Options{
			Workers:   *execFlag,
			Hosts:     splitHosts(*hostsFlag),
			TLS:       workerTLS,
			WorkerBin: *binFlag,
		},
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addrFlag, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dtnsimd: listening on %s (cache %s)\n", *addrFlag, *cacheFlag)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		// Graceful drain: close the listener and finish in-flight HTTP
		// exchanges, then give running jobs the -drain budget before
		// Drain cancels them through their contexts.
		fmt.Fprintf(os.Stderr, "dtnsimd: shutting down (drain %v)\n", *drainFlag)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFlag)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "dtnsimd: http shutdown: %v\n", err)
		}
		if err := srv.Manager().Drain(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "dtnsimd: cancelled remaining jobs: %v\n", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// splitHosts parses the -workers-hosts value: comma-separated
// host:port entries, blanks trimmed and dropped.
func splitHosts(s string) []string {
	var hosts []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			hosts = append(hosts, part)
		}
	}
	return hosts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtnsimd:", err)
	os.Exit(1)
}
