// Command dtnsim runs a single DTN simulation and prints the paper's
// metrics for it, or — with -sweep — the full §IV load sweep (loads
// 5..50 step 5, several seeded runs per point) for one protocol.
//
// Runs are defined by registry specs (-proto, -mob), by legacy flags
// (-protocol/-p/-q/-ttl, -mobility), or entirely as data with
// -scenario file.json; -dump prints the scenario JSON equivalent to
// the current flags instead of running, so any flag-built run can be
// saved and replayed bit-identically. -list shows every registered
// protocol and mobility spec.
//
// Usage:
//
//	dtnsim -mobility trace -protocol dynttl -load 25 -src 0 -dst 7
//	dtnsim -proto pq:p=0.5,q=0.5 -mob subscriber -load 50 -seed 3
//	dtnsim -scenario run.json -events events.csv
//	dtnsim -trace contacts.txt -protocol immunity -load 30
//	dtnsim -sweep -mob subscriber -proto ecttl -runs 10 -workers 4
//	dtnsim -scenario run.json -dist-workers 4
//	dtnsim -scenario run.json -dist-hosts hostA:9761,hostB:9761
//	dtnsim -remote http://localhost:8642 -scenario run.json
//	dtnsim -list
//
// With -dist-workers N a single run executes its epochs on N spawned
// dtnsim-worker processes (see DESIGN.md §13); results and -events/
// -series CSVs are byte-identical to the in-process engines. With
// -dist-hosts a,b the workers are not spawned but dialed over TCP at
// those host:port addresses (dtnsim-worker -listen on each machine;
// -dist-ca upgrades the connections to TLS against that CA bundle),
// and -dist-workers chooses how many worker slots round-robin across
// the hosts (default: one per host). Either way a worker lost mid-run
// is replaced and its round replayed, still bit-identically. The
// distributed flags configure a single local run's executor, so
// combining them with -sweep or -remote is an error.
//
// With -remote URL the run (or sweep) executes on a dtnsimd daemon
// instead of locally: the scenario is submitted to POST /v1/jobs,
// polled until done, and the cached result is printed in the local
// format. Repeat invocations of the same spec and seed are answered
// from the daemon's result cache without re-simulating.
//
// In sweep mode the (load, run) grid executes on a worker pool of
// -workers goroutines (0, the default, uses all CPUs; 1 forces the
// sequential path). Results are bit-identical for every worker count:
// each run's seed derives only from (-seed, load, run). Sweep mode
// drives the paper's own methodology, so -src and -dst (pairs are
// re-randomized per run), -load (the full 5..50 axis is swept) and
// -full (sweeps always run to the horizon for steady-state buffer
// metrics) are ignored there.
package main

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dtnsim"
	"dtnsim/internal/dist"
	"dtnsim/internal/dist/transport"
)

func main() {
	var (
		mobilityFlag = flag.String("mobility", "trace", "legacy mobility source: trace | rwp | classic | interval")
		mobFlag      = flag.String("mob", "", "mobility registry spec (overrides -mobility): cambridge | subscriber | rwp | interval:max=400 | trace:PATH, with k=v args")
		traceFile    = flag.String("trace", "", "read mobility from a trace file instead (nodeA nodeB start end lines)")
		protoKind    = flag.String("protocol", "pure", "legacy protocol: pure | pq | ttl | dynttl | ec | ecttl | immunity | cumimmunity")
		protoFlag    = flag.String("proto", "", "protocol registry spec (overrides -protocol), e.g. pq:p=0.8,q=0.5 or ttl:300")
		scenarioFlag = flag.String("scenario", "", "run a JSON scenario file instead of building one from flags")
		listFlag     = flag.Bool("list", false, "list every registered protocol and mobility spec, then exit")
		dumpFlag     = flag.Bool("dump", false, "print the scenario JSON equivalent to the flags instead of running")
		seriesFlag   = flag.String("series", "", "write the periodic metric samples to this CSV file as the run progresses")
		eventsFlag   = flag.String("events", "", "write every engine event (generate/transmit/deliver/drop) plus samples to this CSV file")
		pFlag        = flag.Float64("p", 1, "P-Q epidemic: source transmission probability")
		qFlag        = flag.Float64("q", 1, "P-Q epidemic: relay transmission probability")
		antiFlag     = flag.Bool("antipackets", false, "P-Q epidemic: enable the §II anti-packet channel")
		ttlFlag      = flag.Float64("ttl", 300, "epidemic with TTL: constant TTL in seconds")
		loadFlag     = flag.Int("load", 25, "bundles to send (the paper sweeps 5..50)")
		srcFlag      = flag.Int("src", 0, "source node")
		dstFlag      = flag.Int("dst", 7, "destination node")
		seedFlag     = flag.Uint64("seed", 42, "random seed (mobility and protocol draws)")
		bufFlag      = flag.Int("buffer", dtnsim.DefaultBufferCap, "per-node buffer capacity in bundles")
		txFlag       = flag.Float64("txtime", dtnsim.DefaultTxTime, "seconds to transmit one bundle")
		bwFlag       = flag.Float64("bw", 0, "contact bandwidth in bytes/sec (0 = unconstrained legacy model)")
		sizeFlag     = flag.Int64("size", 0, "payload size per bundle in bytes (0 = size-less legacy model)")
		bufBytesFlag = flag.Int64("bufbytes", 0, "per-node buffer byte capacity (0 = unbounded)")
		dropFlag     = flag.String("drop", "", "byte-pressure drop policy: droptail | dropfront | droprandom (default droptail)")
		ctlBytesFlag = flag.Float64("ctlbytes", 0, "bytes charged per control record against a bandwidth-limited contact")
		horizonFlag  = flag.Bool("full", false, "run to the mobility horizon instead of stopping at delivery")
		maxIFlag     = flag.Float64("maxinterval", 400, "interval mobility: max inter-encounter gap in seconds")
		timeoutFlag  = flag.Duration("timeout", 0, "abort the run (or sweep) after this much wall time, e.g. 30s (0 = no limit)")
		remoteFlag   = flag.String("remote", "", "run on a dtnsimd daemon at this base URL (e.g. http://localhost:8642) instead of locally")
		sweepFlag    = flag.Bool("sweep", false, "run the paper's §IV load sweep (5..50) instead of a single simulation")
		runsFlag     = flag.Int("runs", 10, "sweep mode: seeded runs per load point")
		workersFlag  = flag.Int("workers", 0, "sweep mode: concurrent runs (0 = all CPUs, 1 = sequential; results are identical)")
		shardsFlag   = flag.Int("shards", 1, "per-run executor shards (1 = classic sequential engine, 0 = one shard per CPU, K>=2 = K worker shards; results are bit-identical)")
		distFlag     = flag.Int("dist-workers", 0, "execute the run's epochs on N dtnsim-worker processes (0 = in-process; results are bit-identical)")
		distHosts    = flag.String("dist-hosts", "", "comma-separated host:port list of dtnsim-worker -listen processes to execute on over TCP instead of spawning")
		distCA       = flag.String("dist-ca", "", "PEM CA bundle that -dist-hosts connections must verify against (enables TLS)")
		workerBin    = flag.String("worker-bin", "", "dtnsim-worker binary for -dist-workers (default: sibling of this executable, then $PATH)")
	)
	flag.Parse()

	if *listFlag {
		printSpecLists()
		return
	}

	// Effective registry specs: -proto/-mob win; otherwise the legacy
	// flags are translated. Either way parsing happens in the registries,
	// which return errors instead of panicking on bad parameters. A spec
	// flag that overrides set legacy flags warns, as -scenario does.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	warnOverridden := func(winner string, losers ...string) {
		for _, name := range losers {
			if explicit[name] {
				fmt.Fprintf(os.Stderr, "dtnsim: -%s is ignored because -%s is set\n", name, winner)
			}
		}
	}
	protoSpec := *protoFlag
	if protoSpec == "" {
		protoSpec = legacyProtocolSpec(*protoKind, *pFlag, *qFlag, *antiFlag, *ttlFlag)
	} else {
		warnOverridden("proto", "protocol", "p", "q", "antipackets", "ttl")
	}
	mobSpec := *mobFlag
	if mobSpec == "" {
		mobSpec = legacyMobilitySpec(*mobilityFlag, *traceFile, *maxIFlag)
	} else {
		warnOverridden("mob", "mobility", "trace", "maxinterval")
	}

	if *sweepFlag {
		// Scenario presets (e.g. interval mobility's faster link) win
		// unless the user set -txtime/-buffer explicitly.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"src", "dst", "load", "full"} {
			if set[name] {
				fmt.Fprintf(os.Stderr, "dtnsim: -%s is ignored in sweep mode (pairs re-randomize per run; the full load axis runs to the horizon)\n", name)
			}
		}
		for _, name := range []string{"scenario", "series", "events"} {
			if set[name] {
				fmt.Fprintf(os.Stderr, "dtnsim: -%s is ignored in sweep mode (it applies to single runs only)\n", name)
			}
		}
		// The distributed flags are a hard error, not a warning: a sweep
		// silently falling back to in-process execution would look like a
		// distributed one while measuring something else.
		if err := distConflict("-sweep", set); err != nil {
			fatal(err)
		}
		txTime, bufferCap := 0.0, 0
		if set["txtime"] {
			txTime = *txFlag
		}
		if set["buffer"] {
			bufferCap = *bufFlag
		}
		// A -mob spec names the scenario itself; the legacy -mobility
		// label applies only when the spec flag is unset.
		legacyName := ""
		if *mobFlag == "" {
			legacyName = *mobilityFlag
		}
		runSweep(sweepParams{
			mobSpec: mobSpec, legacyName: legacyName, protoSpec: protoSpec,
			bufferCap: bufferCap, txTime: txTime,
			bandwidth: *bwFlag, bundleSize: *sizeFlag, bufferBytes: *bufBytesFlag,
			dropPolicy: *dropFlag, controlBytes: *ctlBytesFlag,
			seed: *seedFlag, runs: *runsFlag, workers: *workersFlag,
			shards:  shardCount(*shardsFlag),
			timeout: *timeoutFlag, remote: *remoteFlag, dump: *dumpFlag,
		})
		return
	}

	var sc dtnsim.Scenario
	if *scenarioFlag != "" {
		// The file defines the whole run; warn about any set flag it
		// overrides so a "-scenario run.json -seed 7" invocation cannot
		// silently record the file's seed as the user's.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"mobility", "mob", "trace", "protocol", "proto",
			"p", "q", "antipackets", "ttl", "load", "src", "dst", "seed",
			"buffer", "txtime", "full", "maxinterval",
			"bw", "size", "bufbytes", "drop", "ctlbytes"} {
			if set[name] {
				fmt.Fprintf(os.Stderr, "dtnsim: -%s is ignored with -scenario (the file defines the run)\n", name)
			}
		}
		data, err := os.ReadFile(*scenarioFlag)
		if err != nil {
			fatal(err)
		}
		sc, err = dtnsim.ParseScenario(data)
		if err != nil {
			fatal(err)
		}
		// Shards is an execution-only knob (never part of what the file
		// describes), so unlike the simulation flags above an explicit
		// -shards overrides the file's setting.
		if explicit["shards"] {
			sc.Shards = shardCount(*shardsFlag)
		}
	} else {
		sc = dtnsim.Scenario{
			Mobility:     dtnsim.MobilitySpec(mobSpec),
			Protocol:     dtnsim.ProtocolSpec(protoSpec),
			Flows:        []dtnsim.Flow{{Src: dtnsim.NodeID(*srcFlag), Dst: dtnsim.NodeID(*dstFlag), Count: *loadFlag}},
			BufferCap:    *bufFlag,
			TxTime:       *txFlag,
			Seed:         *seedFlag,
			RunToHorizon: *horizonFlag,
			Bandwidth:    *bwFlag,
			BundleSize:   *sizeFlag,
			BufferBytes:  *bufBytesFlag,
			DropPolicy:   *dropFlag,
			ControlBytes: *ctlBytesFlag,
			Shards:       shardCount(*shardsFlag),
		}
	}

	if *dumpFlag {
		norm, err := sc.Normalize()
		if err != nil {
			fatal(err)
		}
		data, err := norm.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}

	if *remoteFlag != "" {
		// Hard error, matching sweep mode: the daemon chooses its own
		// executor (dtnsimd -workers-exec / -workers-hosts), so a dist
		// flag here describes an executor that will never run.
		if err := distConflict("-remote", explicit); err != nil {
			fatal(err)
		}
		runRemote(*remoteFlag, sc, *seriesFlag, *eventsFlag, *timeoutFlag)
		return
	}

	cfg, err := sc.Compile()
	if err != nil {
		fatal(err)
	}
	if *distFlag > 0 || *distHosts != "" {
		// Distributed execution is, like -shards, an execution-only knob:
		// the backend rides the sharded epoch loop with the items executed
		// by worker processes — spawned locally, or dialed over TCP when
		// -dist-hosts names listeners — and the results stay bit-identical.
		tlsCfg, err := distTLS(*distCA)
		if err != nil {
			fatal(err)
		}
		be, err := dist.New(dist.Options{
			Workers:   *distFlag,
			Protocol:  string(sc.Protocol),
			Hosts:     splitHosts(*distHosts),
			TLS:       tlsCfg,
			WorkerBin: *workerBin,
		})
		if err != nil {
			fatal(err)
		}
		defer be.Close()
		cfg.Backend = be
	}
	if *timeoutFlag > 0 {
		// The engine polls the context at event pops, so a 10k-node run
		// that would otherwise grind for minutes aborts within
		// microseconds of the deadline.
		ctx, cancel := context.WithTimeout(context.Background(), *timeoutFlag)
		defer cancel()
		cfg.Context = ctx
	}
	closers, err := attachStreams(&cfg, *seriesFlag, *eventsFlag)
	if err != nil {
		fatal(err)
	}

	// The mobility summary streams through its own source, like the run
	// itself (cfg.Source) — the schedule is never materialized.
	stream, err := sc.StreamMobility()
	if err != nil {
		fatal(err)
	}
	stats, err := dtnsim.AnalyzeContactSource(stream)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mobility: %s\n", stats)
	result, err := dtnsim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	if err := closers(); err != nil {
		fatal(err)
	}

	fmt.Printf("protocol: %s\n", result.Protocol)
	fmt.Printf("delivered: %d/%d (ratio %.3f)\n", result.Delivered, result.Generated, result.DeliveryRatio)
	if result.Completed {
		fmt.Printf("delay (all bundles): %.0f s\n", result.Makespan)
	} else {
		fmt.Println("delay: transmission failed (not all bundles arrived before the horizon)")
	}
	if result.Delivered > 0 {
		fmt.Printf("mean per-bundle delay: %.0f s\n", result.MeanDelay)
	}
	fmt.Printf("buffer occupancy level: %.3f\n", result.MeanOccupancy)
	fmt.Printf("bundle duplication rate: %.3f\n", result.MeanDuplication)
	fmt.Printf("signaling overhead: %d records\n", result.ControlRecords)
	fmt.Printf("bundle transmissions: %d (refused %d, evicted %d, expired %d, bytepressure %d)\n",
		result.DataTransmissions, result.Refused, result.Evicted, result.Expired, result.ByteDropped)
	fmt.Printf("finished at: %v\n", result.FinishedAt)
}

// attachStreams appends CSV stream observers for the -series and
// -events flags and returns a function that closes the files and
// reports the first deferred write error.
func attachStreams(cfg *dtnsim.Config, seriesPath, eventsPath string) (func() error, error) {
	var files []*os.File
	var bufs []*bufio.Writer
	var streams []interface{ Err() error }
	open := func(path string, events bool) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		// Buffer the file: -events emits one row per transmission, and a
		// syscall per row would dominate large runs.
		w := bufio.NewWriter(f)
		st := dtnsim.NewStreamObserver(w, events)
		cfg.Observers = append(cfg.Observers, st)
		files = append(files, f)
		bufs = append(bufs, w)
		streams = append(streams, st)
		return nil
	}
	if seriesPath != "" {
		if err := open(seriesPath, false); err != nil {
			return nil, err
		}
	}
	if eventsPath != "" {
		if err := open(eventsPath, true); err != nil {
			return nil, err
		}
	}
	return func() error {
		var first error
		for _, st := range streams {
			if err := st.Err(); err != nil && first == nil {
				first = err
			}
		}
		for _, w := range bufs {
			if err := w.Flush(); err != nil && first == nil {
				first = err
			}
		}
		for _, f := range files {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// printSpecLists prints every registered spec from both registries.
func printSpecLists() {
	fmt.Println("protocol specs (use with -proto, Scenario.Protocol, SweepSpec.Protocols):")
	for _, s := range dtnsim.ProtocolSpecs() {
		fmt.Printf("  %-12s %s\n", s.Name, s.Usage)
	}
	fmt.Println()
	fmt.Println("mobility specs (use with -mob, Scenario.Mobility):")
	for _, s := range dtnsim.MobilitySpecs() {
		fmt.Printf("  %-12s %s\n", s.Name, s.Usage)
	}
	fmt.Println()
	fmt.Println("drop policies (use with -drop, Scenario \"drop\" key; need -bufbytes):")
	for _, name := range dtnsim.DropPolicies() {
		fmt.Printf("  %-12s\n", name)
	}
}

// sweepParams carries the sweep-mode flag values.
type sweepParams struct {
	mobSpec, legacyName, protoSpec string
	bufferCap                      int
	txTime                         float64
	bandwidth                      float64
	bundleSize                     int64
	bufferBytes                    int64
	dropPolicy                     string
	controlBytes                   float64
	seed                           uint64
	runs, workers, shards          int
	timeout                        time.Duration
	remote                         string
	dump                           bool
}

// errFlagConflict is the sentinel under every flag-combination error;
// tests pin it with errors.Is.
var errFlagConflict = errors.New("conflicting flags")

// distConflict reports the first distributed-executor flag explicitly
// set alongside mode (-sweep or -remote). Those flags configure a
// single local run's executor, so the combination is rejected rather
// than warned away: the run would otherwise execute somewhere other
// than where the command line says.
func distConflict(mode string, explicit map[string]bool) error {
	for _, name := range []string{"dist-workers", "dist-hosts", "dist-ca", "worker-bin"} {
		if explicit[name] {
			return fmt.Errorf("%w: -%s cannot be combined with %s (the distributed executor applies to single local runs only)",
				errFlagConflict, name, mode)
		}
	}
	return nil
}

// splitHosts parses the -dist-hosts value: comma-separated host:port
// entries, blanks trimmed and dropped.
func splitHosts(s string) []string {
	var hosts []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			hosts = append(hosts, part)
		}
	}
	return hosts
}

// distTLS builds the worker-connection TLS config from the -dist-ca
// bundle; an empty path means plain TCP (nil config).
func distTLS(caPath string) (*tls.Config, error) {
	if caPath == "" {
		return nil, nil
	}
	return transport.ClientCAs(caPath)
}

// shardCount maps the -shards flag onto Scenario.Shards: the flag
// speaks in worker counts (1 = today's sequential engine, 0 = one shard
// per CPU), the scenario field in executors (0 = sequential event loop,
// K >= 1 = sharded with K workers). Either way the results are
// bit-identical — the knob only chooses how they are computed.
func shardCount(flagVal int) int {
	switch {
	case flagVal == 1:
		return 0
	case flagVal == 0:
		return runtime.GOMAXPROCS(0)
	default:
		return flagVal
	}
}

// runSweep executes the paper's load sweep for one protocol on the
// selected mobility source and prints the per-metric tables; with dump
// set it prints the sweep's SweepSpec JSON instead of running.
func runSweep(p sweepParams) {
	spec := dtnsim.SweepSpec{
		Scenario: dtnsim.Scenario{
			Name:         p.legacyName,
			Mobility:     dtnsim.MobilitySpec(p.mobSpec),
			TxTime:       p.txTime,
			BufferCap:    p.bufferCap,
			Seed:         p.seed,
			Bandwidth:    p.bandwidth,
			BundleSize:   p.bundleSize,
			BufferBytes:  p.bufferBytes,
			DropPolicy:   p.dropPolicy,
			ControlBytes: p.controlBytes,
		},
		Protocols: []dtnsim.ProtocolSpec{dtnsim.ProtocolSpec(p.protoSpec)},
		Runs:      p.runs,
		Workers:   p.workers,
	}
	spec.Scenario.Shards = p.shards
	sweep, err := spec.Compile()
	if err != nil {
		fatal(err)
	}
	if p.dump {
		// Round-trip through the compiled sweep so the dump carries
		// canonical specs, matching single-run -dump's Normalize.
		canon, err := dtnsim.SweepSpecOf(spec.Name, sweep)
		if err != nil {
			fatal(err)
		}
		data, err := canon.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		return
	}
	if p.remote != "" {
		// Ship the canonical serializable form, as -dump prints it.
		canon, err := dtnsim.SweepSpecOf(spec.Name, sweep)
		if err != nil {
			fatal(err)
		}
		runRemoteSweep(p.remote, canon, sweep.Scenario.Name, p.runs, p.timeout)
		return
	}
	sweep.OnPoint = func(label string, load int) {
		fmt.Fprintf(os.Stderr, "\r%-20s load %2d   ", label, load)
	}
	if p.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
		defer cancel()
		sweep.Context = ctx
	}
	res, err := dtnsim.RunSweep(sweep)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr)
	for _, m := range []dtnsim.Metric{dtnsim.MetricDelivery, dtnsim.MetricDelay,
		dtnsim.MetricOccupancy, dtnsim.MetricDuplication} {
		fmt.Println(dtnsim.TableOf(res, m, fmt.Sprintf("%s (%s, %d runs/point)", m, sweep.Scenario.Name, p.runs)).ASCII())
	}
}

// legacyProtocolSpec translates the pre-registry protocol flags into a
// spec string; unknown kinds pass through for the registry to reject
// with its ErrSpec error.
func legacyProtocolSpec(kind string, p, q float64, anti bool, ttl float64) string {
	switch kind {
	case "pq":
		spec := fmt.Sprintf("pq:p=%g,q=%g", p, q)
		if anti {
			spec += ",anti"
		}
		return spec
	case "ttl":
		return fmt.Sprintf("ttl:%g", ttl)
	default:
		return kind
	}
}

// legacyMobilitySpec translates the pre-registry mobility flags
// (-mobility trace|rwp|classic|interval, -trace FILE) into a spec
// string; unknown kinds pass through for the registry to reject.
func legacyMobilitySpec(kind, traceFile string, maxInterval float64) string {
	if traceFile != "" {
		return "trace:" + traceFile
	}
	switch kind {
	case "trace":
		return "cambridge"
	case "rwp":
		return "subscriber"
	case "classic":
		return "rwp"
	case "interval":
		return fmt.Sprintf("interval:max=%g", maxInterval)
	default:
		return kind
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtnsim:", err)
	os.Exit(1)
}
