// Command dtnsim runs a single DTN simulation and prints the paper's
// metrics for it, or — with -sweep — the full §IV load sweep (loads
// 5..50 step 5, several seeded runs per point) for one protocol.
//
// Usage:
//
//	dtnsim -mobility trace -protocol dynttl -load 25 -src 0 -dst 7
//	dtnsim -mobility rwp -protocol pq -p 0.5 -q 0.5 -load 50 -seed 3
//	dtnsim -trace contacts.txt -protocol immunity -load 30
//	dtnsim -sweep -mobility rwp -protocol ecttl -runs 10 -workers 4
//
// In sweep mode the (load, run) grid executes on a worker pool of
// -workers goroutines (0, the default, uses all CPUs; 1 forces the
// sequential path). Results are bit-identical for every worker count:
// each run's seed derives only from (-seed, load, run). Sweep mode
// drives the paper's own methodology, so -src and -dst (pairs are
// re-randomized per run), -load (the full 5..50 axis is swept) and
// -full (sweeps always run to the horizon for steady-state buffer
// metrics) are ignored there.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtnsim"
)

func main() {
	var (
		mobilityFlag = flag.String("mobility", "trace", "mobility source: trace | rwp | classic | interval")
		traceFile    = flag.String("trace", "", "read mobility from a trace file instead (nodeA nodeB start end lines)")
		protoFlag    = flag.String("protocol", "pure", "protocol: pure | pq | ttl | dynttl | ec | ecttl | immunity | cumimmunity")
		pFlag        = flag.Float64("p", 1, "P-Q epidemic: source transmission probability")
		qFlag        = flag.Float64("q", 1, "P-Q epidemic: relay transmission probability")
		antiFlag     = flag.Bool("antipackets", false, "P-Q epidemic: enable the §II anti-packet channel")
		ttlFlag      = flag.Float64("ttl", 300, "epidemic with TTL: constant TTL in seconds")
		loadFlag     = flag.Int("load", 25, "bundles to send (the paper sweeps 5..50)")
		srcFlag      = flag.Int("src", 0, "source node")
		dstFlag      = flag.Int("dst", 7, "destination node")
		seedFlag     = flag.Uint64("seed", 42, "random seed (mobility and protocol draws)")
		bufFlag      = flag.Int("buffer", dtnsim.DefaultBufferCap, "per-node buffer capacity in bundles")
		txFlag       = flag.Float64("txtime", dtnsim.DefaultTxTime, "seconds to transmit one bundle")
		horizonFlag  = flag.Bool("full", false, "run to the mobility horizon instead of stopping at delivery")
		maxIFlag     = flag.Float64("maxinterval", 400, "interval mobility: max inter-encounter gap in seconds")
		sweepFlag    = flag.Bool("sweep", false, "run the paper's §IV load sweep (5..50) instead of a single simulation")
		runsFlag     = flag.Int("runs", 10, "sweep mode: seeded runs per load point")
		workersFlag  = flag.Int("workers", 0, "sweep mode: concurrent runs (0 = all CPUs, 1 = sequential; results are identical)")
	)
	flag.Parse()

	if *sweepFlag {
		// Scenario presets (e.g. interval mobility's faster link) win
		// unless the user set -txtime/-buffer explicitly.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"src", "dst", "load", "full"} {
			if set[name] {
				fmt.Fprintf(os.Stderr, "dtnsim: -%s is ignored in sweep mode (pairs re-randomize per run; the full load axis runs to the horizon)\n", name)
			}
		}
		txTime, bufferCap := 0.0, 0
		if set["txtime"] {
			txTime = *txFlag
		}
		if set["buffer"] {
			bufferCap = *bufFlag
		}
		runSweep(*mobilityFlag, *traceFile, *protoFlag, *pFlag, *qFlag, *antiFlag, *ttlFlag,
			*maxIFlag, bufferCap, txTime, *seedFlag, *runsFlag, *workersFlag)
		return
	}

	schedule, err := buildSchedule(*mobilityFlag, *traceFile, *seedFlag, *maxIFlag)
	if err != nil {
		fatal(err)
	}
	proto, err := buildProtocol(*protoFlag, *pFlag, *qFlag, *antiFlag, *ttlFlag)
	if err != nil {
		fatal(err)
	}

	st := dtnsim.AnalyzeSchedule(schedule)
	fmt.Printf("mobility: %s\n", st)

	result, err := dtnsim.Run(dtnsim.Config{
		Schedule:     schedule,
		Protocol:     proto,
		Flows:        []dtnsim.Flow{{Src: dtnsim.NodeID(*srcFlag), Dst: dtnsim.NodeID(*dstFlag), Count: *loadFlag}},
		BufferCap:    *bufFlag,
		TxTime:       *txFlag,
		Seed:         *seedFlag,
		RunToHorizon: *horizonFlag,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("protocol: %s\n", result.Protocol)
	fmt.Printf("delivered: %d/%d (ratio %.3f)\n", result.Delivered, result.Generated, result.DeliveryRatio)
	if result.Completed {
		fmt.Printf("delay (all bundles): %.0f s\n", result.Makespan)
	} else {
		fmt.Println("delay: transmission failed (not all bundles arrived before the horizon)")
	}
	if result.Delivered > 0 {
		fmt.Printf("mean per-bundle delay: %.0f s\n", result.MeanDelay)
	}
	fmt.Printf("buffer occupancy level: %.3f\n", result.MeanOccupancy)
	fmt.Printf("bundle duplication rate: %.3f\n", result.MeanDuplication)
	fmt.Printf("signaling overhead: %d records\n", result.ControlRecords)
	fmt.Printf("bundle transmissions: %d (refused %d, evicted %d, expired %d)\n",
		result.DataTransmissions, result.Refused, result.Evicted, result.Expired)
	fmt.Printf("finished at: %v\n", result.FinishedAt)
}

// runSweep executes the paper's load sweep for one protocol on the
// selected mobility source and prints the per-metric tables.
func runSweep(mobility, traceFile, proto string, p, q float64, anti bool, ttl, maxInterval float64,
	bufferCap int, txTime float64, seed uint64, runs, workers int) {
	// Fail fast on a bad protocol spec before any simulation runs.
	if _, err := buildProtocol(proto, p, q, anti, ttl); err != nil {
		fatal(err)
	}
	sc, err := buildScenario(mobility, traceFile, maxInterval)
	if err != nil {
		fatal(err)
	}
	if txTime != 0 {
		sc.TxTime = txTime
	}
	if bufferCap != 0 {
		sc.BufferCap = bufferCap
	}
	res, err := dtnsim.RunSweep(dtnsim.Sweep{
		Scenario: sc,
		Protocols: []dtnsim.ProtocolFactory{{
			Label: proto,
			New: func() dtnsim.Protocol {
				pr, err := buildProtocol(proto, p, q, anti, ttl)
				if err != nil {
					panic(err) // validated above
				}
				return pr
			},
		}},
		Runs:     runs,
		BaseSeed: seed,
		Workers:  workers,
		OnPoint: func(label string, load int) {
			fmt.Fprintf(os.Stderr, "\r%-20s load %2d   ", label, load)
		},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr)
	for _, m := range []dtnsim.Metric{dtnsim.MetricDelivery, dtnsim.MetricDelay,
		dtnsim.MetricOccupancy, dtnsim.MetricDuplication} {
		fmt.Println(dtnsim.TableOf(res, m, fmt.Sprintf("%s (%s, %d runs/point)", m, sc.Name, runs)).ASCII())
	}
}

// buildScenario wraps the mobility flags as a sweep scenario. Synthetic
// models regenerate mobility per run like the paper's RWP experiments;
// a trace file is parsed once and shared by all runs.
func buildScenario(kind, traceFile string, maxInterval float64) (dtnsim.ExperimentScenario, error) {
	if traceFile != "" {
		return dtnsim.ExperimentScenario{
			Name: "tracefile",
			Generate: func(uint64) (*dtnsim.Schedule, error) {
				return buildSchedule(kind, traceFile, 0, maxInterval)
			},
		}, nil
	}
	switch kind {
	case "trace":
		return dtnsim.TraceScenario(), nil
	case "rwp":
		return dtnsim.RWPScenario(), nil
	case "interval":
		return dtnsim.IntervalScenario(maxInterval), nil
	case "classic":
		return dtnsim.ExperimentScenario{
			Name: "classic",
			Generate: func(seed uint64) (*dtnsim.Schedule, error) {
				return dtnsim.ClassicRWP{Seed: seed}.Generate()
			},
			PerRunSchedule: true,
		}, nil
	default:
		return dtnsim.ExperimentScenario{}, fmt.Errorf("unknown mobility %q (want trace|rwp|classic|interval)", kind)
	}
}

func buildSchedule(kind, traceFile string, seed uint64, maxInterval float64) (*dtnsim.Schedule, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dtnsim.ParseTrace(f)
	}
	switch kind {
	case "trace":
		return dtnsim.CambridgeTrace(seed)
	case "rwp":
		return dtnsim.SubscriberRWP(seed)
	case "classic":
		return dtnsim.ClassicRWP{Seed: seed}.Generate()
	case "interval":
		return dtnsim.ControlledInterval{Seed: seed, MaxInterval: maxInterval}.Generate()
	default:
		return nil, fmt.Errorf("unknown mobility %q (want trace|rwp|classic|interval)", kind)
	}
}

func buildProtocol(kind string, p, q float64, anti bool, ttl float64) (dtnsim.Protocol, error) {
	switch kind {
	case "pure":
		return dtnsim.Pure(), nil
	case "pq":
		if anti {
			return dtnsim.PQWithAntiPackets(p, q), nil
		}
		return dtnsim.PQ(p, q), nil
	case "ttl":
		return dtnsim.TTL(ttl), nil
	case "dynttl":
		return dtnsim.DynamicTTL(), nil
	case "ec":
		return dtnsim.EC(), nil
	case "ecttl":
		return dtnsim.ECTTL(), nil
	case "immunity":
		return dtnsim.Immunity(), nil
	case "cumimmunity":
		return dtnsim.CumulativeImmunity(), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtnsim:", err)
	os.Exit(1)
}
