package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtnsim"
)

func TestBuildScheduleKinds(t *testing.T) {
	for _, kind := range []string{"trace", "rwp", "classic", "interval"} {
		s, err := buildSchedule(kind, "", 3, 400)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildSchedule("bogus", "", 3, 400); err == nil {
		t.Error("unknown mobility accepted")
	}
}

func TestBuildScheduleFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	gen, err := dtnsim.CambridgeTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dtnsim.WriteTrace(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := buildSchedule("ignored", path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Contacts) != len(gen.Contacts) {
		t.Errorf("file round trip: %d contacts, want %d", len(s.Contacts), len(gen.Contacts))
	}
	if _, err := buildSchedule("trace", filepath.Join(t.TempDir(), "missing"), 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildScenarioKinds(t *testing.T) {
	// Synthetic models regenerate per run; the fixed trace does not.
	perRun := map[string]bool{"trace": false, "rwp": true, "classic": true, "interval": true}
	for kind, want := range perRun {
		sc, err := buildScenario(kind, "", 400)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sc.PerRunSchedule != want {
			t.Errorf("%s: PerRunSchedule = %v, want %v", kind, sc.PerRunSchedule, want)
		}
		s, err := sc.Generate(3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildScenario("bogus", "", 400); err == nil {
		t.Error("unknown mobility accepted")
	}
}

func TestBuildScenarioFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	gen, err := dtnsim.CambridgeTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dtnsim.WriteTrace(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := buildScenario("ignored", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.PerRunSchedule {
		t.Error("a fixed trace file must be shared across runs")
	}
	s, err := sc.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Contacts) != len(gen.Contacts) {
		t.Errorf("file round trip: %d contacts, want %d", len(s.Contacts), len(gen.Contacts))
	}
}

func TestBuildProtocolKinds(t *testing.T) {
	kinds := []string{"pure", "pq", "ttl", "dynttl", "ec", "ecttl", "immunity", "cumimmunity"}
	for _, k := range kinds {
		p, err := buildProtocol(k, 0.5, 0.5, false, 300)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty name", k)
		}
	}
	p, err := buildProtocol("pq", 1, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "P-Q epidemic (P=1,Q=1,anti-packets)" {
		t.Errorf("anti-packet variant name = %q", p.Name())
	}
	if _, err := buildProtocol("bogus", 0, 0, false, 0); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestLegacyFlagSpecTranslation(t *testing.T) {
	cases := map[string]string{
		legacyProtocolSpec("pure", 1, 1, false, 300):  "pure",
		legacyProtocolSpec("pq", 0.5, 0.25, false, 0): "pq:p=0.5,q=0.25",
		legacyProtocolSpec("pq", 1, 1, true, 0):       "pq:p=1,q=1,anti",
		legacyProtocolSpec("ttl", 0, 0, false, 150):   "ttl:150",
		legacyMobilitySpec("trace", "", 0):            "cambridge",
		legacyMobilitySpec("rwp", "", 0):              "subscriber",
		legacyMobilitySpec("classic", "", 0):          "rwp",
		legacyMobilitySpec("interval", "", 2000):      "interval:max=2000",
		legacyMobilitySpec("trace", "f.txt", 0):       "trace:f.txt",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("legacy translation = %q, want %q", got, want)
		}
	}
}

// TestBuildProtocolRejectsOutOfRange: bad P-Q probabilities and TTLs
// must surface as errors at the CLI boundary, not as panics.
func TestBuildProtocolRejectsOutOfRange(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("buildProtocol panicked: %v", r)
		}
	}()
	if _, err := buildProtocol("pq", 2, 0.5, false, 0); err == nil {
		t.Error("p=2 accepted")
	}
	if _, err := buildProtocol("pq", 0.5, -1, false, 0); err == nil {
		t.Error("q=-1 accepted")
	}
	if _, err := buildProtocol("ttl", 0, 0, false, -10); err == nil {
		t.Error("negative TTL accepted")
	}
	if _, err := buildProtocol("ttl", 0, 0, false, 0); err == nil {
		t.Error("zero TTL accepted")
	}
}

// The build* helpers below exercise the legacy-flag translation path
// exactly as main does: translate to a registry spec, then parse.
// They live in the test file because main routes through
// Scenario.Compile directly.

func buildScenario(kind, traceFile string, maxInterval float64) (dtnsim.ExperimentScenario, error) {
	sc, err := dtnsim.ParseMobilitySpec(legacyMobilitySpec(kind, traceFile, maxInterval))
	if err != nil {
		return dtnsim.ExperimentScenario{}, err
	}
	if traceFile == "" {
		sc.Name = kind
	}
	return sc, nil
}

func buildSchedule(kind, traceFile string, seed uint64, maxInterval float64) (*dtnsim.Schedule, error) {
	sc, err := buildScenario(kind, traceFile, maxInterval)
	if err != nil {
		return nil, err
	}
	return sc.Generate(seed)
}

func buildProtocol(kind string, p, q float64, anti bool, ttl float64) (dtnsim.Protocol, error) {
	f, err := dtnsim.ParseProtocolSpec(legacyProtocolSpec(kind, p, q, anti, ttl))
	if err != nil {
		return nil, err
	}
	return f.New(), nil
}
