package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"errors"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dtnsim"
)

func TestBuildScheduleKinds(t *testing.T) {
	for _, kind := range []string{"trace", "rwp", "classic", "interval"} {
		s, err := buildSchedule(kind, "", 3, 400)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildSchedule("bogus", "", 3, 400); err == nil {
		t.Error("unknown mobility accepted")
	}
}

func TestBuildScheduleFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	gen, err := dtnsim.CambridgeTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dtnsim.WriteTrace(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := buildSchedule("ignored", path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Contacts) != len(gen.Contacts) {
		t.Errorf("file round trip: %d contacts, want %d", len(s.Contacts), len(gen.Contacts))
	}
	if _, err := buildSchedule("trace", filepath.Join(t.TempDir(), "missing"), 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildScenarioKinds(t *testing.T) {
	// Synthetic models regenerate per run; the fixed trace does not.
	perRun := map[string]bool{"trace": false, "rwp": true, "classic": true, "interval": true}
	for kind, want := range perRun {
		sc, err := buildScenario(kind, "", 400)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sc.PerRunSchedule != want {
			t.Errorf("%s: PerRunSchedule = %v, want %v", kind, sc.PerRunSchedule, want)
		}
		s, err := sc.Generate(3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildScenario("bogus", "", 400); err == nil {
		t.Error("unknown mobility accepted")
	}
}

func TestBuildScenarioFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	gen, err := dtnsim.CambridgeTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dtnsim.WriteTrace(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := buildScenario("ignored", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.PerRunSchedule {
		t.Error("a fixed trace file must be shared across runs")
	}
	s, err := sc.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Contacts) != len(gen.Contacts) {
		t.Errorf("file round trip: %d contacts, want %d", len(s.Contacts), len(gen.Contacts))
	}
}

func TestBuildProtocolKinds(t *testing.T) {
	kinds := []string{"pure", "pq", "ttl", "dynttl", "ec", "ecttl", "immunity", "cumimmunity"}
	for _, k := range kinds {
		p, err := buildProtocol(k, 0.5, 0.5, false, 300)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty name", k)
		}
	}
	p, err := buildProtocol("pq", 1, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "P-Q epidemic (P=1,Q=1,anti-packets)" {
		t.Errorf("anti-packet variant name = %q", p.Name())
	}
	if _, err := buildProtocol("bogus", 0, 0, false, 0); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestLegacyFlagSpecTranslation(t *testing.T) {
	cases := map[string]string{
		legacyProtocolSpec("pure", 1, 1, false, 300):  "pure",
		legacyProtocolSpec("pq", 0.5, 0.25, false, 0): "pq:p=0.5,q=0.25",
		legacyProtocolSpec("pq", 1, 1, true, 0):       "pq:p=1,q=1,anti",
		legacyProtocolSpec("ttl", 0, 0, false, 150):   "ttl:150",
		legacyMobilitySpec("trace", "", 0):            "cambridge",
		legacyMobilitySpec("rwp", "", 0):              "subscriber",
		legacyMobilitySpec("classic", "", 0):          "rwp",
		legacyMobilitySpec("interval", "", 2000):      "interval:max=2000",
		legacyMobilitySpec("trace", "f.txt", 0):       "trace:f.txt",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("legacy translation = %q, want %q", got, want)
		}
	}
}

// TestBuildProtocolRejectsOutOfRange: bad P-Q probabilities and TTLs
// must surface as errors at the CLI boundary, not as panics.
func TestBuildProtocolRejectsOutOfRange(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("buildProtocol panicked: %v", r)
		}
	}()
	if _, err := buildProtocol("pq", 2, 0.5, false, 0); err == nil {
		t.Error("p=2 accepted")
	}
	if _, err := buildProtocol("pq", 0.5, -1, false, 0); err == nil {
		t.Error("q=-1 accepted")
	}
	if _, err := buildProtocol("ttl", 0, 0, false, -10); err == nil {
		t.Error("negative TTL accepted")
	}
	if _, err := buildProtocol("ttl", 0, 0, false, 0); err == nil {
		t.Error("zero TTL accepted")
	}
}

// TestDistConflict pins the hard-error contract: any distributed
// executor flag set alongside -sweep or -remote is rejected with the
// errFlagConflict sentinel instead of being warned away and ignored.
func TestDistConflict(t *testing.T) {
	for _, mode := range []string{"-sweep", "-remote"} {
		for _, name := range []string{"dist-workers", "dist-hosts", "dist-ca", "worker-bin"} {
			err := distConflict(mode, map[string]bool{name: true})
			if err == nil {
				t.Errorf("%s with -%s accepted", mode, name)
				continue
			}
			if !errors.Is(err, errFlagConflict) {
				t.Errorf("%s with -%s: error %v does not wrap errFlagConflict", mode, name, err)
			}
			if !strings.Contains(err.Error(), name) || !strings.Contains(err.Error(), mode) {
				t.Errorf("%s with -%s: error %q names neither flag nor mode", mode, name, err)
			}
		}
		if err := distConflict(mode, map[string]bool{"seed": true, "proto": true}); err != nil {
			t.Errorf("%s without dist flags rejected: %v", mode, err)
		}
	}
}

func TestSplitHosts(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , ,b:2, ", []string{"a:1", "b:2"}},
	}
	for _, c := range cases {
		got := splitHosts(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitHosts(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitHosts(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

// TestDistTLS pins the -dist-ca loader: empty path means plain TCP,
// a missing or certificate-free file is an error, and a real PEM
// bundle yields a config with a populated root pool.
func TestDistTLS(t *testing.T) {
	cfg, err := distTLS("")
	if err != nil || cfg != nil {
		t.Errorf("empty path: (%v, %v), want (nil, nil)", cfg, err)
	}
	if _, err := distTLS(filepath.Join(t.TempDir(), "missing.pem")); err == nil {
		t.Error("missing CA file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.pem")
	if err := os.WriteFile(bad, []byte("not a certificate"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := distTLS(bad); err == nil {
		t.Error("certificate-free CA file accepted")
	}
	good := filepath.Join(t.TempDir(), "ca.pem")
	if err := os.WriteFile(good, selfSignedCAPEM(t), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg, err = distTLS(good)
	if err != nil {
		t.Fatalf("valid CA bundle rejected: %v", err)
	}
	if cfg == nil || cfg.RootCAs == nil {
		t.Fatal("valid CA bundle produced no root pool")
	}
}

// selfSignedCAPEM generates a throwaway CA certificate in PEM form.
func selfSignedCAPEM(t *testing.T) []byte {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "dtnsim-test-ca"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageCertSign,
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
}

// The build* helpers below exercise the legacy-flag translation path
// exactly as main does: translate to a registry spec, then parse.
// They live in the test file because main routes through
// Scenario.Compile directly.

func buildScenario(kind, traceFile string, maxInterval float64) (dtnsim.ExperimentScenario, error) {
	sc, err := dtnsim.ParseMobilitySpec(legacyMobilitySpec(kind, traceFile, maxInterval))
	if err != nil {
		return dtnsim.ExperimentScenario{}, err
	}
	if traceFile == "" {
		sc.Name = kind
	}
	return sc, nil
}

func buildSchedule(kind, traceFile string, seed uint64, maxInterval float64) (*dtnsim.Schedule, error) {
	sc, err := buildScenario(kind, traceFile, maxInterval)
	if err != nil {
		return nil, err
	}
	return sc.Generate(seed)
}

func buildProtocol(kind string, p, q float64, anti bool, ttl float64) (dtnsim.Protocol, error) {
	f, err := dtnsim.ParseProtocolSpec(legacyProtocolSpec(kind, p, q, anti, ttl))
	if err != nil {
		return nil, err
	}
	return f.New(), nil
}
