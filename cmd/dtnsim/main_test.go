package main

import (
	"os"
	"path/filepath"
	"testing"

	"dtnsim"
)

func TestBuildScheduleKinds(t *testing.T) {
	for _, kind := range []string{"trace", "rwp", "classic", "interval"} {
		s, err := buildSchedule(kind, "", 3, 400)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildSchedule("bogus", "", 3, 400); err == nil {
		t.Error("unknown mobility accepted")
	}
}

func TestBuildScheduleFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	gen, err := dtnsim.CambridgeTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dtnsim.WriteTrace(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := buildSchedule("ignored", path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Contacts) != len(gen.Contacts) {
		t.Errorf("file round trip: %d contacts, want %d", len(s.Contacts), len(gen.Contacts))
	}
	if _, err := buildSchedule("trace", filepath.Join(t.TempDir(), "missing"), 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildScenarioKinds(t *testing.T) {
	// Synthetic models regenerate per run; the fixed trace does not.
	perRun := map[string]bool{"trace": false, "rwp": true, "classic": true, "interval": true}
	for kind, want := range perRun {
		sc, err := buildScenario(kind, "", 400)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sc.PerRunSchedule != want {
			t.Errorf("%s: PerRunSchedule = %v, want %v", kind, sc.PerRunSchedule, want)
		}
		s, err := sc.Generate(3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildScenario("bogus", "", 400); err == nil {
		t.Error("unknown mobility accepted")
	}
}

func TestBuildScenarioFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	gen, err := dtnsim.CambridgeTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dtnsim.WriteTrace(f, gen); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := buildScenario("ignored", path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.PerRunSchedule {
		t.Error("a fixed trace file must be shared across runs")
	}
	s, err := sc.Generate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Contacts) != len(gen.Contacts) {
		t.Errorf("file round trip: %d contacts, want %d", len(s.Contacts), len(gen.Contacts))
	}
}

func TestBuildProtocolKinds(t *testing.T) {
	kinds := []string{"pure", "pq", "ttl", "dynttl", "ec", "ecttl", "immunity", "cumimmunity"}
	for _, k := range kinds {
		p, err := buildProtocol(k, 0.5, 0.5, false, 300)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty name", k)
		}
	}
	p, err := buildProtocol("pq", 1, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "P-Q epidemic (P=1,Q=1,anti-packets)" {
		t.Errorf("anti-packet variant name = %q", p.Name())
	}
	if _, err := buildProtocol("bogus", 0, 0, false, 0); err == nil {
		t.Error("unknown protocol accepted")
	}
}
