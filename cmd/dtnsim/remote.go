package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"time"

	"dtnsim"
	"dtnsim/client"
)

// Remote mode: -remote URL sends the run (or sweep) to a dtnsimd
// daemon instead of simulating locally. The spec documents are exactly
// the ones local mode consumes, so a run is bit-identical either way;
// the daemon's cache means a repeated invocation returns instantly.

// remoteContext bounds the whole remote exchange with -timeout.
func remoteContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

// submitAndWait submits one spec and polls until it settles.
func submitAndWait(ctx context.Context, c *client.Client, req client.SubmitRequest) client.JobStatus {
	sub, err := c.Submit(ctx, req)
	if err != nil {
		fatal(err)
	}
	if sub.Cached {
		fmt.Fprintf(os.Stderr, "dtnsim: cache hit, job %s\n", sub.JobID)
	} else {
		fmt.Fprintf(os.Stderr, "dtnsim: job %s %s\n", sub.JobID, sub.State)
	}
	st, err := c.Wait(ctx, sub.JobID, 0)
	if err != nil {
		// Best-effort cancel so an abandoned wait doesn't leave the
		// daemon simulating for nobody.
		cancelCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Cancel(cancelCtx, sub.JobID)
		fatal(err)
	}
	if st.State != client.StateDone {
		fatal(fmt.Errorf("job %s %s: %s", st.JobID, st.State, st.Error))
	}
	return st
}

// runRemote executes a single scenario on the daemon and prints the
// same summary local mode would; -series/-events download the cached
// CSV artifacts.
func runRemote(base string, sc dtnsim.Scenario, seriesPath, eventsPath string, timeout time.Duration) {
	spec, err := sc.JSON()
	if err != nil {
		fatal(err)
	}
	ctx, cancel := remoteContext(timeout)
	defer cancel()
	c := client.New(base)
	st := submitAndWait(ctx, c, client.SubmitRequest{Scenario: spec})
	res, err := c.RunResult(ctx, st.JobID)
	if err != nil {
		fatal(err)
	}
	for path, fetch := range map[string]func(context.Context, string) ([]byte, error){
		seriesPath: c.SeriesCSV,
		eventsPath: c.EventsCSV,
	} {
		if path == "" {
			continue
		}
		data, err := fetch(ctx, st.JobID)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
	}
	printRemoteResult(res)
}

// printRemoteResult mirrors local mode's summary block.
func printRemoteResult(r *client.RunResult) {
	fmt.Printf("protocol: %s\n", r.Protocol)
	fmt.Printf("delivered: %d/%d (ratio %.3f)\n", r.Delivered, r.Generated, r.DeliveryRatio)
	if r.Completed {
		fmt.Printf("delay (all bundles): %.0f s\n", r.Makespan)
	} else {
		fmt.Println("delay: transmission failed (not all bundles arrived before the horizon)")
	}
	if r.Delivered > 0 {
		fmt.Printf("mean per-bundle delay: %.0f s\n", r.MeanDelay)
	}
	fmt.Printf("buffer occupancy level: %.3f\n", r.MeanOccupancy)
	fmt.Printf("bundle duplication rate: %.3f\n", r.MeanDuplication)
	fmt.Printf("signaling overhead: %d records\n", r.ControlRecords)
	fmt.Printf("bundle transmissions: %d (refused %d, evicted %d, expired %d, bytepressure %d)\n",
		r.DataTransmissions, r.Refused, r.Evicted, r.Expired, r.ByteDropped)
	fmt.Printf("finished at: %v\n", dtnsim.Time(r.FinishedAt))
}

// runRemoteSweep executes a sweep on the daemon and renders the same
// per-metric ASCII tables as local sweep mode.
func runRemoteSweep(base string, spec dtnsim.SweepSpec, scenarioName string, runs int, timeout time.Duration) {
	raw, err := spec.JSON()
	if err != nil {
		fatal(err)
	}
	ctx, cancel := remoteContext(timeout)
	defer cancel()
	c := client.New(base)
	st := submitAndWait(ctx, c, client.SubmitRequest{Sweep: raw})
	wire, err := c.SweepResult(ctx, st.JobID)
	if err != nil {
		fatal(err)
	}
	res := decodeSweepResult(wire)
	for _, m := range []dtnsim.Metric{dtnsim.MetricDelivery, dtnsim.MetricDelay,
		dtnsim.MetricOccupancy, dtnsim.MetricDuplication} {
		fmt.Println(dtnsim.TableOf(res, m, fmt.Sprintf("%s (%s, %d runs/point)", m, scenarioName, runs)).ASCII())
	}
}

// decodeSweepResult converts the wire form back to the harness type so
// remote results render through the same report code (null → NaN).
func decodeSweepResult(w *client.SweepResult) *dtnsim.SweepResult {
	res := &dtnsim.SweepResult{Scenario: w.Scenario, Loads: w.Loads}
	for _, s := range w.Series {
		series := dtnsim.Series{Label: s.Label}
		for _, p := range s.Points {
			pt := dtnsim.Point{
				Load:      p.Load,
				Values:    map[dtnsim.Metric]float64{},
				Completed: p.Completed,
				Runs:      p.Runs,
			}
			for m, v := range p.Values {
				if v == nil {
					pt.Values[dtnsim.Metric(m)] = math.NaN()
					continue
				}
				pt.Values[dtnsim.Metric(m)] = *v
			}
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}
	return res
}
