// Command tracegen generates encounter traces from any of the mobility
// models and writes them in the canonical text format (readable by
// dtnsim -trace and dtnsim.ParseTrace), printing summary statistics.
//
// Usage:
//
//	tracegen -model trace -seed 42 -o cambridge.txt
//	tracegen -model rwp -nodes 20 -o rwp.txt
//	tracegen -model interval -maxinterval 2000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dtnsim"
)

func main() {
	var (
		model     = flag.String("model", "trace", "mobility model: trace | rwp | classic | interval")
		seed      = flag.Uint64("seed", 42, "random seed")
		nodes     = flag.Int("nodes", 0, "node count (0 = model default)")
		span      = flag.Float64("span", 0, "simulated seconds (0 = model default)")
		maxI      = flag.Float64("maxinterval", 400, "interval model: max inter-encounter gap")
		out       = flag.String("o", "", "output file (default stdout)")
		statsOnly = flag.Bool("stats", false, "print statistics only, no trace")
	)
	flag.Parse()

	schedule, err := generate(*model, *seed, *nodes, *span, *maxI)
	if err != nil {
		fatal(err)
	}

	st := dtnsim.AnalyzeSchedule(schedule)
	fmt.Fprintf(os.Stderr, "%s\n", st)

	if *statsOnly {
		return
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := dtnsim.WriteTrace(w, schedule); err != nil {
		fatal(err)
	}
}

func generate(model string, seed uint64, nodes int, span, maxI float64) (*dtnsim.Schedule, error) {
	switch model {
	case "trace":
		return dtnsim.SyntheticCambridge{Seed: seed, Nodes: nodes, Span: dtnsim.Time(span)}.Generate()
	case "rwp":
		return dtnsim.SubscriberPointRWP{Seed: seed, Nodes: nodes, Span: dtnsim.Time(span)}.Generate()
	case "classic":
		return dtnsim.ClassicRWP{Seed: seed, Nodes: nodes, Span: dtnsim.Time(span)}.Generate()
	case "interval":
		return dtnsim.ControlledInterval{Seed: seed, Nodes: nodes, MaxInterval: maxI}.Generate()
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
