package dtnsim

import (
	"dtnsim/internal/buffer"
	"dtnsim/internal/experiment"
	"dtnsim/internal/report"
)

// Experiment-harness types, re-exported so downstream users can define
// their own sweeps and render them like the paper's figures.
type (
	// Sweep is a load-sweep experiment specification (§IV: loads
	// 5..50 step 5, ten seeded runs per point). Its (protocol, load,
	// run) grid executes on a worker pool bounded by Sweep.Workers
	// (0 = all CPUs, 1 = sequential) with bit-identical results for
	// every worker count.
	Sweep = experiment.Sweep
	// SweepResult is a finished sweep: one Series per protocol.
	SweepResult = experiment.Result
	// Series is one protocol's curve across loads.
	Series = experiment.Series
	// Point is one averaged (load, protocol) measurement.
	Point = experiment.Point
	// Metric selects a measurement: delay, delivery, occupancy,
	// duplication or overhead.
	Metric = experiment.Metric
	// Figure is one of the paper's figures as a runnable experiment.
	Figure = experiment.Figure
	// ProtocolFactory builds a fresh protocol instance per run.
	ProtocolFactory = experiment.ProtocolFactory
	// ExperimentScenario produces mobility input for sweep runs.
	ExperimentScenario = experiment.Scenario
	// TableIIRow is one row of the paper's closing comparison table.
	TableIIRow = experiment.TableIIRow
	// ResultTable is a rendered metric table (CSV / ASCII / plot).
	ResultTable = report.Table
)

// The paper's metrics (§IV) plus the §V-C signaling-overhead count.
const (
	MetricDelay       = experiment.MetricDelay
	MetricDelivery    = experiment.MetricDelivery
	MetricOccupancy   = experiment.MetricOccupancy
	MetricDuplication = experiment.MetricDuplication
	MetricOverhead    = experiment.MetricOverhead
)

// Figures returns every reproducible experiment (Fig. 7–20 plus the
// §V-C overhead comparison) in paper order.
func Figures() []Figure { return experiment.Figures() }

// Ablations returns the §IV parameter sweeps (constant-TTL values, P=Q
// values) and enhancement-parameter sensitivity experiments.
func Ablations() []Figure { return experiment.Ablations() }

// AllExperiments returns Figures followed by Ablations.
func AllExperiments() []Figure { return experiment.AllExperiments() }

// FigureByID looks up one experiment ("fig07" … "fig20", "overhead",
// "ttlsweep", "pqsweep", "dynmult", "ecthresh").
func FigureByID(id string) (Figure, error) { return experiment.FigureByID(id) }

// RunSweep executes a load-sweep experiment.
func RunSweep(s Sweep) (*SweepResult, error) { return experiment.Run(s) }

// Fig14Pair returns the two controlled-interval sweeps behind Fig. 14
// (max inter-encounter interval 400 s versus 2000 s).
func Fig14Pair() (short, long Sweep) { return experiment.Fig14Pair() }

// TableII computes the paper's Table II: load-averaged delivery rate,
// buffer occupancy and duplication rate for the six §V-B protocols under
// both mobility sources. Runs execute on a worker pool sized to
// runtime.GOMAXPROCS(0); use TableIIWorkers to bound it explicitly.
func TableII(baseSeed uint64, runs int) ([]TableIIRow, error) {
	return experiment.TableII(baseSeed, runs, 0)
}

// TableIIWorkers is TableII with an explicit worker-pool bound, with
// the same semantics as Sweep.Workers: 0 means GOMAXPROCS(0), 1 runs
// sequentially. Results are identical for every worker count.
func TableIIWorkers(baseSeed uint64, runs, workers int) ([]TableIIRow, error) {
	return experiment.TableII(baseSeed, runs, workers)
}

// RenderTableII renders Table II rows in the paper's layout.
func RenderTableII(rows []TableIIRow) string { return report.TableIIText(rows) }

// TableOf extracts one metric from a sweep result as a renderable table.
func TableOf(r *SweepResult, m Metric, title string) *ResultTable {
	return report.FromResult(r, m, title)
}

// DefaultLoads is the paper's load axis: 5, 10, …, 50.
func DefaultLoads() []int { return experiment.DefaultLoads() }

// AllMetrics lists every metric in the harness's canonical order.
func AllMetrics() []Metric { return experiment.AllMetrics() }

// Scale sweeps: the population axis opened by streaming contact
// sources (see DESIGN.md §8).
type (
	// ScaleSweep sweeps node count instead of load.
	ScaleSweep = experiment.ScaleSweep
	// ScaleResult is a finished scale sweep.
	ScaleResult = experiment.ScaleResult
	// ScaleSeries is one protocol's curve across populations.
	ScaleSeries = experiment.ScaleSeries
	// ScalePoint is one averaged (protocol, nodes) measurement.
	ScalePoint = experiment.ScalePoint
)

// Constrained sweeps: the resource axis opened by finite-bandwidth
// contacts, sized bundles and byte-bounded buffers (DESIGN.md §9).
type (
	// ConstrainedSweep sweeps contact bandwidth at a fixed load.
	ConstrainedSweep = experiment.ConstrainedSweep
	// ConstrainedResult is a finished constrained sweep.
	ConstrainedResult = experiment.ConstrainedResult
	// ConstrainedSeries is one (protocol, drop policy) curve across
	// bandwidths.
	ConstrainedSeries = experiment.ConstrainedSeries
	// ConstrainedPoint is one averaged (series, bandwidth) measurement.
	ConstrainedPoint = experiment.ConstrainedPoint
)

// DefaultConstrainedSweep is the trace-based bandwidth sweep the
// figures CLI runs with -only constrained: delivery/delay/drops versus
// bandwidth for pure epidemic and TTL under all three drop policies.
func DefaultConstrainedSweep() ConstrainedSweep { return experiment.DefaultConstrainedSweep() }

// RunConstrained executes a constrained sweep.
func RunConstrained(s ConstrainedSweep) (*ConstrainedResult, error) {
	return experiment.RunConstrained(s)
}

// DropPolicies lists the registered buffer drop-policy names usable in
// Config.DropPolicy, Scenario "drop" keys and ConstrainedSweep.
func DropPolicies() []string { return buffer.DropPolicyNames() }

// DefaultScaleSweep is the 1k/5k/10k-node classic-RWP scale experiment.
func DefaultScaleSweep() ScaleSweep { return experiment.DefaultScaleSweep() }

// RunScale executes a scale sweep; every run streams its mobility, so
// contact-plan memory stays O(nodes) at any population.
func RunScale(s ScaleSweep) (*ScaleResult, error) { return experiment.RunScale(s) }

// ScaleMobility is the default population→mobility-spec mapping of the
// scale sweep (constant-density classic RWP).
func ScaleMobility(nodes int) string { return experiment.ScaleMobility(nodes) }

// Standard scenarios and protocol factories for sweeps.

// TraceScenario is the trace-based setup (synthetic Cambridge trace,
// fixed across runs).
func TraceScenario() ExperimentScenario { return experiment.TraceScenario() }

// RWPScenario is the subscriber-point RWP setup (regenerated per run).
func RWPScenario() ExperimentScenario { return experiment.RWPScenario() }

// IntervalScenario is the Fig. 14 controlled-interval setup.
func IntervalScenario(maxInterval float64) ExperimentScenario {
	return experiment.IntervalScenario(maxInterval)
}
